// Package tpcc implements the TPC-C workload used throughout §7.3-7.4 of
// the paper: the full five-transaction mix, partitioned by warehouse, with
// the two contention points the paper calls out (the district
// next-order-id increment in NewOrder and the warehouse year-to-date
// update in Payment).
//
// Deviations from the full TPC-C spec, chosen to preserve contention
// behaviour while staying inside the static stored-procedure model:
//
//   - The read-only Item table is omitted; item prices derive
//     deterministically from the item id. (Item reads are shared locks on
//     an immutable table — they contribute no contention. H-Store-style
//     systems replicate Item everywhere for the same reason.)
//   - Delivery processes one district per transaction (selected randomly)
//     and delivers that district's most recent order rather than scanning
//     for the oldest undelivered one, avoiding a secondary index while
//     keeping the district→order→customer pk-dependency chain.
//   - OrderStatus reads the customer's district's latest order rather
//     than using a customer-last-order index.
//   - StockLevel samples 10 stock records below the district rather than
//     scanning the last 20 orders' lines.
package tpcc

import (
	"encoding/binary"

	"github.com/chillerdb/chiller/internal/cluster"
	"github.com/chillerdb/chiller/internal/storage"
)

// Table identifiers.
const (
	TableWarehouse storage.TableID = 1
	TableDistrict  storage.TableID = 2
	TableCustomer  storage.TableID = 3
	TableStock     storage.TableID = 4
	TableOrder     storage.TableID = 5
	TableNewOrder  storage.TableID = 6
	TableOrderLine storage.TableID = 7
	TableHistory   storage.TableID = 8
)

// Key-packing radixes. Keys are dense per warehouse so a single integer
// division recovers the warehouse id for partitioning.
const (
	DistrictsPerWarehouse = 10
	customerRadix         = 1_000_000  // customers per district key space
	orderRadix            = 10_000_000 // orders per district key space
	orderLineRadix        = 16         // lines per order key space
	stockRadix            = 1_000_000  // items per warehouse key space
	historyRadix          = 1_000_000_000_000
	// MaxOrderLines is the largest NewOrder cart size.
	MaxOrderLines = 15
	// MinOrderLines is the smallest NewOrder cart size.
	MinOrderLines = 5
)

// WarehouseKey returns the warehouse record's key.
func WarehouseKey(w int) storage.Key { return storage.Key(w) }

// DistrictKey returns a district record's key.
func DistrictKey(w, d int) storage.Key {
	return storage.Key(w*DistrictsPerWarehouse + d)
}

// CustomerKey returns a customer record's key.
func CustomerKey(w, d, c int) storage.Key {
	return storage.Key(uint64(DistrictKey(w, d))*customerRadix + uint64(c))
}

// StockKey returns a stock record's key.
func StockKey(w, item int) storage.Key {
	return storage.Key(uint64(w)*stockRadix + uint64(item))
}

// OrderKey returns an order record's key.
func OrderKey(w, d, o int) storage.Key {
	return storage.Key(uint64(DistrictKey(w, d))*orderRadix + uint64(o))
}

// OrderLineKey returns an order-line record's key.
func OrderLineKey(orderKey storage.Key, line int) storage.Key {
	return storage.Key(uint64(orderKey)*orderLineRadix + uint64(line))
}

// HistoryKey returns a history record's key from the home warehouse and a
// unique sequence number.
func HistoryKey(w int, seq uint64) storage.Key {
	return storage.Key(uint64(w)*historyRadix + seq)
}

// WarehouseOf recovers the warehouse id from any record's key — the
// by-warehouse partitioning function.
func WarehouseOf(table storage.TableID, key storage.Key) int {
	k := uint64(key)
	switch table {
	case TableWarehouse:
		return int(k)
	case TableDistrict:
		return int(k / DistrictsPerWarehouse)
	case TableCustomer:
		return int(k / customerRadix / DistrictsPerWarehouse)
	case TableStock:
		return int(k / stockRadix)
	case TableOrder, TableNewOrder:
		return int(k / orderRadix / DistrictsPerWarehouse)
	case TableOrderLine:
		return int(k / orderLineRadix / orderRadix / DistrictsPerWarehouse)
	case TableHistory:
		return int(k / historyRadix)
	}
	return 0
}

// Partitioner routes records to partitions by contiguous warehouse
// ranges: warehousesPerPartition warehouses per partition.
func Partitioner(totalWarehouses, partitions int) cluster.FuncPartitioner {
	wpp := totalWarehouses / partitions
	if wpp < 1 {
		wpp = 1
	}
	return cluster.FuncPartitioner{
		Label: "tpcc-by-warehouse",
		Fn: func(rid storage.RID) cluster.PartitionID {
			p := WarehouseOf(rid.Table, rid.Key) / wpp
			if p >= partitions {
				p = partitions - 1
			}
			return cluster.PartitionID(p)
		},
	}
}

// --- record layouts (fixed-point money: 1 = $0.01) ---

func putI64s(vs ...int64) []byte {
	out := make([]byte, 8*len(vs))
	for i, v := range vs {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

func getI64(p []byte, i int) int64 {
	if (i+1)*8 > len(p) {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(p[i*8:]))
}

// Warehouse is the warehouse row (w_ytd, w_tax).
type Warehouse struct {
	YTD int64
	Tax int64 // basis points
}

// Encode serializes the row.
func (w Warehouse) Encode() []byte { return putI64s(w.YTD, w.Tax) }

// DecodeWarehouse parses a warehouse row.
func DecodeWarehouse(p []byte) Warehouse {
	return Warehouse{YTD: getI64(p, 0), Tax: getI64(p, 1)}
}

// District is the district row (d_next_o_id, d_ytd, d_tax).
type District struct {
	NextOID int64
	YTD     int64
	Tax     int64
}

// Encode serializes the row.
func (d District) Encode() []byte { return putI64s(d.NextOID, d.YTD, d.Tax) }

// DecodeDistrict parses a district row.
func DecodeDistrict(p []byte) District {
	return District{NextOID: getI64(p, 0), YTD: getI64(p, 1), Tax: getI64(p, 2)}
}

// Customer is the customer row.
type Customer struct {
	Balance    int64
	YTDPayment int64
	PaymentCnt int64
	Discount   int64 // basis points
}

// Encode serializes the row.
func (c Customer) Encode() []byte {
	return putI64s(c.Balance, c.YTDPayment, c.PaymentCnt, c.Discount)
}

// DecodeCustomer parses a customer row.
func DecodeCustomer(p []byte) Customer {
	return Customer{
		Balance:    getI64(p, 0),
		YTDPayment: getI64(p, 1),
		PaymentCnt: getI64(p, 2),
		Discount:   getI64(p, 3),
	}
}

// Stock is the stock row.
type Stock struct {
	Quantity  int64
	YTD       int64
	OrderCnt  int64
	RemoteCnt int64
}

// Encode serializes the row.
func (s Stock) Encode() []byte {
	return putI64s(s.Quantity, s.YTD, s.OrderCnt, s.RemoteCnt)
}

// DecodeStock parses a stock row.
func DecodeStock(p []byte) Stock {
	return Stock{
		Quantity:  getI64(p, 0),
		YTD:       getI64(p, 1),
		OrderCnt:  getI64(p, 2),
		RemoteCnt: getI64(p, 3),
	}
}

// Order is the order header row.
type Order struct {
	CustomerID int64
	OLCnt      int64
	CarrierID  int64
	EntryDate  int64
}

// Encode serializes the row.
func (o Order) Encode() []byte {
	return putI64s(o.CustomerID, o.OLCnt, o.CarrierID, o.EntryDate)
}

// DecodeOrder parses an order row.
func DecodeOrder(p []byte) Order {
	return Order{
		CustomerID: getI64(p, 0),
		OLCnt:      getI64(p, 1),
		CarrierID:  getI64(p, 2),
		EntryDate:  getI64(p, 3),
	}
}

// OrderLine is one order line.
type OrderLine struct {
	ItemID   int64
	SupplyW  int64
	Quantity int64
	Amount   int64
}

// Encode serializes the row.
func (l OrderLine) Encode() []byte {
	return putI64s(l.ItemID, l.SupplyW, l.Quantity, l.Amount)
}

// DecodeOrderLine parses an order line.
func DecodeOrderLine(p []byte) OrderLine {
	return OrderLine{
		ItemID:   getI64(p, 0),
		SupplyW:  getI64(p, 1),
		Quantity: getI64(p, 2),
		Amount:   getI64(p, 3),
	}
}

// ItemPrice derives an item's price deterministically from its id (the
// Item table substitute): uniform in [100, 10000) cents, like TPC-C's
// price range.
func ItemPrice(item int64) int64 {
	x := uint64(item)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return int64(100 + x%9900)
}
