package tpcc

import (
	"fmt"

	"github.com/chillerdb/chiller/internal/storage"
	"github.com/chillerdb/chiller/internal/txn"
)

// Procedure names. NewOrder is registered once per cart size because the
// stored-procedure model is static; NewOrderProc(n) returns the name.
const (
	ProcPayment     = "tpcc.payment"
	ProcOrderStatus = "tpcc.orderstatus"
	ProcDelivery    = "tpcc.delivery"
	ProcStockLevel  = "tpcc.stocklevel"
)

// NewOrderProc returns the registered name of the NewOrder variant with n
// order lines.
func NewOrderProc(n int) string { return fmt.Sprintf("tpcc.neworder.%d", n) }

// RegisterAll registers every TPC-C procedure in the registry.
func RegisterAll(reg *txn.Registry) error {
	for n := MinOrderLines; n <= MaxOrderLines; n++ {
		if err := reg.Register(newOrderProcedure(n)); err != nil {
			return err
		}
	}
	for _, p := range []*txn.Procedure{
		paymentProcedure(),
		orderStatusProcedure(),
		deliveryProcedure(),
		stockLevelProcedure(),
	} {
		if err := reg.Register(p); err != nil {
			return err
		}
	}
	return nil
}

func argKey(i int, f func(v int64) storage.Key) txn.KeyFunc {
	return func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
		return f(args[i]), true
	}
}

// newOrderProcedure builds the NewOrder variant with n lines.
//
// args: [0]=w [1]=d [2]=c, then per line i: [3+3i]=item [4+3i]=supplyW
// [5+3i]=qty.
//
// Ops: 0 read warehouse (S) · 1 update district (X, hot: next_o_id++) ·
// 2 read customer (S) · 3..2+n update stock (X) · 3+n insert order ·
// 4+n insert new-order · 5+n.. insert order lines. The inserts' keys
// depend on the district read (pk-dep), and the inserts are co-located
// with the district by the warehouse partitioner — exactly the shape that
// lets Chiller's analysis put the district increment plus all inserts in
// the inner region.
func newOrderProcedure(n int) *txn.Procedure {
	ops := make([]txn.OpSpec, 0, 5+2*n)

	// 0: warehouse read (w_tax).
	ops = append(ops, txn.OpSpec{
		ID: 0, Type: txn.OpRead, Table: TableWarehouse,
		Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
			return WarehouseKey(int(args[0])), true
		},
	})
	// 1: district update (read d_next_o_id and d_tax, increment).
	ops = append(ops, txn.OpSpec{
		ID: 1, Type: txn.OpUpdate, Table: TableDistrict,
		Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
			return DistrictKey(int(args[0]), int(args[1])), true
		},
		Mutate: func(old []byte, _ txn.Args, _ txn.ReadSet) ([]byte, error) {
			d := DecodeDistrict(old)
			d.NextOID++
			return d.Encode(), nil
		},
	})
	// 2: customer read (discount).
	ops = append(ops, txn.OpSpec{
		ID: 2, Type: txn.OpRead, Table: TableCustomer,
		Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
			return CustomerKey(int(args[0]), int(args[1]), int(args[2])), true
		},
	})
	// 3..2+n: stock updates.
	for i := 0; i < n; i++ {
		i := i
		ops = append(ops, txn.OpSpec{
			ID: 3 + i, Type: txn.OpUpdate, Table: TableStock,
			Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
				return StockKey(int(args[4+3*i]), int(args[3+3*i])), true
			},
			Mutate: func(old []byte, args txn.Args, _ txn.ReadSet) ([]byte, error) {
				s := DecodeStock(old)
				q := args[5+3*i]
				s.Quantity -= q
				if s.Quantity < 10 {
					s.Quantity += 91
				}
				s.YTD += q
				s.OrderCnt++
				if args[4+3*i] != args[0] {
					s.RemoteCnt++
				}
				return s.Encode(), nil
			},
		})
	}
	orderKeyFn := func(args txn.Args, reads txn.ReadSet) (storage.Key, bool) {
		dv, ok := reads[1]
		if !ok || len(dv) == 0 {
			return 0, false
		}
		oid := DecodeDistrict(dv).NextOID
		return OrderKey(int(args[0]), int(args[1]), int(oid)), true
	}
	districtPartKey := func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
		return DistrictKey(int(args[0]), int(args[1])), true
	}
	// 3+n: order insert.
	ops = append(ops, txn.OpSpec{
		ID: 3 + n, Type: txn.OpInsert, Table: TableOrder,
		Key: orderKeyFn, PKDeps: []int{1},
		PartKey: districtPartKey, PartTable: TableDistrict,
		Mutate: func(_ []byte, args txn.Args, _ txn.ReadSet) ([]byte, error) {
			return Order{CustomerID: args[2], OLCnt: int64(n)}.Encode(), nil
		},
	})
	// 4+n: new-order marker insert.
	ops = append(ops, txn.OpSpec{
		ID: 4 + n, Type: txn.OpInsert, Table: TableNewOrder,
		Key: orderKeyFn, PKDeps: []int{1},
		PartKey: districtPartKey, PartTable: TableDistrict,
		Mutate: func(_ []byte, _ txn.Args, _ txn.ReadSet) ([]byte, error) {
			return []byte{1}, nil
		},
	})
	// 5+n..4+2n: order-line inserts. Amount uses the stock read and the
	// warehouse/district taxes plus customer discount — v-deps, which do
	// not restrict ordering (§3.2).
	for i := 0; i < n; i++ {
		i := i
		ops = append(ops, txn.OpSpec{
			ID: 5 + n + i, Type: txn.OpInsert, Table: TableOrderLine,
			Key: func(args txn.Args, reads txn.ReadSet) (storage.Key, bool) {
				ok, okOK := orderKeyFn(args, reads)
				if !okOK {
					return 0, false
				}
				return OrderLineKey(ok, i), true
			},
			PKDeps:  []int{1},
			VDeps:   []int{0, 2, 3 + i},
			PartKey: districtPartKey, PartTable: TableDistrict,
			Mutate: func(_ []byte, args txn.Args, reads txn.ReadSet) ([]byte, error) {
				item := args[3+3*i]
				qty := args[5+3*i]
				amount := qty * ItemPrice(item)
				// Apply taxes and discount when available (10000 = 100%).
				wTax := DecodeWarehouse(reads[0]).Tax
				cDisc := DecodeCustomer(reads[2]).Discount
				amount = amount * (10000 + wTax) / 10000 * (10000 - cDisc) / 10000
				return OrderLine{
					ItemID: item, SupplyW: args[4+3*i], Quantity: qty, Amount: amount,
				}.Encode(), nil
			},
		})
	}
	return &txn.Procedure{Name: NewOrderProc(n), Ops: ops}
}

// paymentProcedure: args [0]=w [1]=d [2]=cw [3]=cd [4]=c [5]=amount
// [6]=history seq.
//
// Ops: 0 update warehouse ytd (X — the severe contention point §7.3.2) ·
// 1 update district ytd (X) · 2 update customer (possibly remote) ·
// 3 insert history.
func paymentProcedure() *txn.Procedure {
	return &txn.Procedure{
		Name: ProcPayment,
		Ops: []txn.OpSpec{
			{
				ID: 0, Type: txn.OpUpdate, Table: TableWarehouse,
				Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
					return WarehouseKey(int(args[0])), true
				},
				Mutate: func(old []byte, args txn.Args, _ txn.ReadSet) ([]byte, error) {
					w := DecodeWarehouse(old)
					w.YTD += args[5]
					return w.Encode(), nil
				},
			},
			{
				ID: 1, Type: txn.OpUpdate, Table: TableDistrict,
				Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
					return DistrictKey(int(args[0]), int(args[1])), true
				},
				Mutate: func(old []byte, args txn.Args, _ txn.ReadSet) ([]byte, error) {
					d := DecodeDistrict(old)
					d.YTD += args[5]
					return d.Encode(), nil
				},
			},
			{
				ID: 2, Type: txn.OpUpdate, Table: TableCustomer,
				Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
					return CustomerKey(int(args[2]), int(args[3]), int(args[4])), true
				},
				Mutate: func(old []byte, args txn.Args, _ txn.ReadSet) ([]byte, error) {
					c := DecodeCustomer(old)
					c.Balance -= args[5]
					c.YTDPayment += args[5]
					c.PaymentCnt++
					return c.Encode(), nil
				},
			},
			{
				ID: 3, Type: txn.OpInsert, Table: TableHistory,
				Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
					return HistoryKey(int(args[0]), uint64(args[6])), true
				},
				Mutate: func(_ []byte, args txn.Args, _ txn.ReadSet) ([]byte, error) {
					out := make([]byte, 8)
					for i := 0; i < 8; i++ {
						out[i] = byte(args[5] >> (8 * i))
					}
					return out, nil
				},
			},
		},
	}
}

// orderStatusProcedure: args [0]=w [1]=d [2]=c. Read-only: district,
// customer, the district's latest order, and its first line.
func orderStatusProcedure() *txn.Procedure {
	lastOrderKey := func(args txn.Args, reads txn.ReadSet) (storage.Key, bool) {
		dv, ok := reads[0]
		if !ok || len(dv) == 0 {
			return 0, false
		}
		oid := DecodeDistrict(dv).NextOID - 1
		if oid < 0 {
			oid = 0
		}
		return OrderKey(int(args[0]), int(args[1]), int(oid)), true
	}
	return &txn.Procedure{
		Name: ProcOrderStatus,
		Ops: []txn.OpSpec{
			{
				ID: 0, Type: txn.OpRead, Table: TableDistrict,
				Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
					return DistrictKey(int(args[0]), int(args[1])), true
				},
			},
			{
				ID: 1, Type: txn.OpRead, Table: TableCustomer,
				Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
					return CustomerKey(int(args[0]), int(args[1]), int(args[2])), true
				},
			},
			{
				ID: 2, Type: txn.OpRead, Table: TableOrder,
				Key: lastOrderKey, PKDeps: []int{0},
				PartKey: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
					return DistrictKey(int(args[0]), int(args[1])), true
				},
				PartTable: TableDistrict,
			},
			{
				ID: 3, Type: txn.OpRead, Table: TableOrderLine,
				Key: func(args txn.Args, reads txn.ReadSet) (storage.Key, bool) {
					ok, okOK := lastOrderKey(args, reads)
					if !okOK {
						return 0, false
					}
					return OrderLineKey(ok, 0), true
				},
				PKDeps: []int{0},
				PartKey: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
					return DistrictKey(int(args[0]), int(args[1])), true
				},
				PartTable: TableDistrict,
			},
		},
	}
}

// deliveryProcedure: args [0]=w [1]=d [2]=carrier. One district per
// transaction: read district, stamp the latest order's carrier, credit
// that order's customer — a district→order→customer pk-dependency chain.
func deliveryProcedure() *txn.Procedure {
	lastOrderKey := func(args txn.Args, reads txn.ReadSet) (storage.Key, bool) {
		dv, ok := reads[0]
		if !ok || len(dv) == 0 {
			return 0, false
		}
		oid := DecodeDistrict(dv).NextOID - 1
		if oid < 0 {
			oid = 0
		}
		return OrderKey(int(args[0]), int(args[1]), int(oid)), true
	}
	districtPartKey := func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
		return DistrictKey(int(args[0]), int(args[1])), true
	}
	return &txn.Procedure{
		Name: ProcDelivery,
		Ops: []txn.OpSpec{
			{
				ID: 0, Type: txn.OpRead, Table: TableDistrict,
				Key: districtPartKey,
			},
			{
				ID: 1, Type: txn.OpUpdate, Table: TableOrder,
				Key: lastOrderKey, PKDeps: []int{0},
				PartKey: districtPartKey, PartTable: TableDistrict,
				Mutate: func(old []byte, args txn.Args, _ txn.ReadSet) ([]byte, error) {
					o := DecodeOrder(old)
					o.CarrierID = args[2]
					return o.Encode(), nil
				},
			},
			{
				ID: 2, Type: txn.OpUpdate, Table: TableCustomer,
				Key: func(args txn.Args, reads txn.ReadSet) (storage.Key, bool) {
					ov, ok := reads[1]
					if !ok || len(ov) == 0 {
						return 0, false
					}
					c := DecodeOrder(ov).CustomerID
					return CustomerKey(int(args[0]), int(args[1]), int(c)), true
				},
				PKDeps:  []int{1},
				PartKey: districtPartKey, PartTable: TableDistrict,
				Mutate: func(old []byte, _ txn.Args, _ txn.ReadSet) ([]byte, error) {
					c := DecodeCustomer(old)
					c.Balance += 100 // delivery credit (fixed)
					return c.Encode(), nil
				},
			},
		},
	}
}

// stockLevelProcedure: args [0]=w [1]=d [2]=threshold [3..12]=item ids.
// Read-only: district plus 10 stock records; the client counts how many
// fall below the threshold.
func stockLevelProcedure() *txn.Procedure {
	ops := []txn.OpSpec{
		{
			ID: 0, Type: txn.OpRead, Table: TableDistrict,
			Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
				return DistrictKey(int(args[0]), int(args[1])), true
			},
		},
	}
	for i := 0; i < 10; i++ {
		i := i
		ops = append(ops, txn.OpSpec{
			ID: 1 + i, Type: txn.OpRead, Table: TableStock,
			Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
				return StockKey(int(args[0]), int(args[3+i])), true
			},
		})
	}
	return &txn.Procedure{Name: ProcStockLevel, Ops: ops}
}

// CountBelowThreshold evaluates StockLevel's client-side aggregation over
// a committed result.
func CountBelowThreshold(reads txn.ReadSet, threshold int64) int {
	count := 0
	for i := 1; i <= 10; i++ {
		if v, ok := reads[i]; ok && DecodeStock(v).Quantity < threshold {
			count++
		}
	}
	return count
}
