package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/chillerdb/chiller/internal/cluster"
	"github.com/chillerdb/chiller/internal/server"
	"github.com/chillerdb/chiller/internal/storage"
	"github.com/chillerdb/chiller/internal/transport/simfab"
	"github.com/chillerdb/chiller/internal/txn"
)

const laneTestTable storage.TableID = 1

// lanedNode builds a one-node cluster with the given lane count and a
// touch procedure whose mutator invokes hook(key) while the inner
// region holds the record's bucket lock on its owning lane.
func lanedNode(t *testing.T, lanes int, hook func(k storage.Key)) *server.Node {
	t.Helper()
	net := simfab.New(simfab.Config{})
	topo := cluster.NewTopology(1, 1)
	dir := cluster.NewDirectory(topo, cluster.HashPartitioner{N: 1})
	dir.SetLanes(lanes)
	st := storage.NewStore()
	tbl := st.CreateTable(laneTestTable, 256)
	for k := storage.Key(0); k < 128; k++ {
		if err := tbl.Bucket(k).Insert(k, []byte{0}); err != nil {
			t.Fatal(err)
		}
	}
	reg := txn.NewRegistry()
	if err := reg.Register(&txn.Procedure{
		Name: "lanes.touch",
		Ops: []txn.OpSpec{{
			ID:    0,
			Type:  txn.OpUpdate,
			Table: laneTestTable,
			Key: func(args txn.Args, _ txn.ReadSet) (storage.Key, bool) {
				return storage.Key(args[0]), true
			},
			Mutate: func(old []byte, args txn.Args, _ txn.ReadSet) ([]byte, error) {
				hook(storage.Key(args[0]))
				return []byte{old[0] + 1}, nil
			},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	n := server.New(net.Endpoint(0), st, reg, dir, 0)
	RegisterVerbs(n)
	t.Cleanup(func() {
		net.Close()
		n.Close()
	})
	return n
}

// keysOnLane returns count distinct keys whose stable lane is `lane`,
// skipping every `avoid` key (so same-lane keys can still differ).
func keysOnLane(t *testing.T, lane, lanes, count int, avoid map[storage.Key]bool) []storage.Key {
	t.Helper()
	var out []storage.Key
	for k := storage.Key(0); k < 128 && len(out) < count; k++ {
		if avoid[k] {
			continue
		}
		if storage.LaneOf(storage.RID{Table: laneTestTable, Key: k}, lanes) == lane {
			out = append(out, k)
		}
	}
	if len(out) < count {
		t.Fatalf("could not find %d keys on lane %d", count, lane)
	}
	return out
}

func runInner(n *server.Node, key storage.Key) *txn.Result {
	resp := ExecInnerLocal(n, n.NextTxnID(), n.ID(), "lanes.touch",
		txn.Args{int64(key)}, []int{0}, nil, nil)
	return &txn.Result{Committed: resp.OK, Reason: resp.Reason}
}

// Inner regions whose hot records live on distinct lanes must execute
// concurrently: each region's mutator waits for the other region to
// enter — a rendezvous that deadlocks under the old node-wide inner
// mutex and under any regression that collapses lanes back to one.
func TestInnerRegionsOnDistinctLanesInterleave(t *testing.T) {
	const lanes = 4
	var k0, k1 storage.Key
	gates := map[storage.Key]chan struct{}{}
	hook := func(k storage.Key) {
		close(gates[k])
		var other storage.Key
		if k == k0 {
			other = k1
		} else {
			other = k0
		}
		select {
		case <-gates[other]:
		case <-time.After(5 * time.Second):
			// Let the region finish; the test fails on the flag below.
		}
	}
	n := lanedNode(t, lanes, hook)
	k0 = keysOnLane(t, 0, lanes, 1, nil)[0]
	k1 = keysOnLane(t, 1, lanes, 1, nil)[0]
	gates[k0], gates[k1] = make(chan struct{}), make(chan struct{})

	var wg sync.WaitGroup
	results := make([]*txn.Result, 2)
	start := time.Now()
	for i, k := range []storage.Key{k0, k1} {
		i, k := i, k
		wg.Add(1)
		go func() {
			defer wg.Done()
			results[i] = runInner(n, k)
		}()
	}
	wg.Wait()
	if time.Since(start) > 4*time.Second {
		t.Fatal("distinct-lane inner regions serialized (rendezvous timed out)")
	}
	for i, r := range results {
		if !r.Committed {
			t.Fatalf("region %d aborted: %v", i, r.Reason)
		}
	}
}

// Inner regions on the same lane must serialize even when they touch
// different records: the lane is a single-threaded engine. The hook
// bumps an unsynchronized counter (-race proves mutual exclusion) and
// an in-flight gauge (catches overlap without -race).
func TestInnerRegionsOnSameLaneSerialize(t *testing.T) {
	const lanes = 4
	plain := 0
	var inFlight, maxInFlight atomic.Int32
	hook := func(storage.Key) {
		if cur := inFlight.Add(1); cur > maxInFlight.Load() {
			maxInFlight.Store(cur)
		}
		plain++
		inFlight.Add(-1)
	}
	n := lanedNode(t, lanes, hook)
	keys := keysOnLane(t, 2, lanes, 4, nil)

	const perKey = 50
	var wg sync.WaitGroup
	var aborted atomic.Int32
	for _, k := range keys {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perKey; i++ {
				if r := runInner(n, k); !r.Committed {
					aborted.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if got := aborted.Load(); got != 0 {
		t.Fatalf("%d same-lane inner regions aborted — lane serialization should prevent every conflict", got)
	}
	if plain != len(keys)*perKey {
		t.Fatalf("lost mutator runs: %d, want %d", plain, len(keys)*perKey)
	}
	if maxInFlight.Load() != 1 {
		t.Fatalf("same-lane inner regions overlapped (max in flight %d)", maxInFlight.Load())
	}
}
