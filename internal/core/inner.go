package core

import (
	"fmt"
	"time"

	"github.com/chillerdb/chiller/internal/server"
	"github.com/chillerdb/chiller/internal/storage"
	"github.com/chillerdb/chiller/internal/transport"
	"github.com/chillerdb/chiller/internal/txn"
	"github.com/chillerdb/chiller/internal/wire"
)

// innerRequest is the RPC the coordinator sends to the inner host
// (step 4 of §3.3): "all information needed to execute and commit the
// transaction (transaction ID, all remaining operation IDs, input
// parameters, etc.)".
type innerRequest struct {
	TxnID    uint64
	Coord    transport.NodeID
	Proc     string
	Args     txn.Args
	InnerOps []int
	Reads    txn.ReadSet // outer-region values the inner ops may need
}

func (r *innerRequest) encode() []byte {
	w := wire.NewWriter(128)
	w.Uint64(r.TxnID)
	w.Uint32(uint32(r.Coord))
	w.String(r.Proc)
	w.Int64s(r.Args)
	w.Ints(r.InnerOps)
	r.Reads.Encode(w)
	return w.Bytes()
}

func decodeInnerRequest(p []byte) (*innerRequest, error) {
	r := wire.NewReader(p)
	req := &innerRequest{}
	req.TxnID = r.Uint64()
	req.Coord = transport.NodeID(r.Uint32())
	req.Proc = r.String()
	req.Args = r.Int64s()
	req.InnerOps = r.Ints()
	req.Reads = txn.DecodeReadSet(r)
	return req, r.Err()
}

// innerResponse reports the inner host's unilateral decision plus the
// values it read (the coordinator needs them to materialize outer writes
// with v-deps on the inner region — e.g. Figure 4's cost value flowing
// back to the customer-balance update).
type innerResponse struct {
	OK     bool
	Reason txn.AbortReason
	Reads  txn.ReadSet
	// TS is the commit timestamp the inner host reserved at its
	// unilateral commit point (zero when MVCC is off). The coordinator
	// stamps every outer apply with it and releases it once the commit
	// wave has landed cluster-wide.
	TS uint64
	// Streamed is how many replication-stream messages the inner host
	// sent for this region — the number of acks the coordinator must
	// wait out. It is a count the host alone knows: the stream targets
	// are captured from the host's topology snapshot, which can include
	// a warming replica mid-handoff that the coordinator's view lacks.
	Streamed int
	// detail is coordinator-local failure context (transport errors on
	// the delegation RPC); it never travels on the wire.
	detail string
}

func (r *innerResponse) encode() []byte {
	w := wire.NewWriter(64)
	w.Bool(r.OK)
	w.Uint8(uint8(r.Reason))
	w.Uint64(r.TS)
	w.Uint32(uint32(r.Streamed))
	r.Reads.Encode(w)
	return w.Bytes()
}

func decodeInnerResponse(p []byte) (*innerResponse, error) {
	r := wire.NewReader(p)
	resp := &innerResponse{}
	resp.OK = r.Bool()
	resp.Reason = txn.AbortReason(r.Uint8())
	resp.TS = r.Uint64()
	resp.Streamed = int(r.Uint32())
	resp.Reads = txn.DecodeReadSet(r)
	return resp, r.Err()
}

// encodeRouteRequest serializes a transaction-placement request.
func encodeRouteRequest(req *txn.Request) []byte {
	w := wire.NewWriter(64 + len(req.Args)*8)
	w.Uint64(req.ID)
	w.String(req.Proc)
	w.Int64s(req.Args)
	return w.Bytes()
}

func decodeRouteRequest(p []byte) (*txn.Request, error) {
	r := wire.NewReader(p)
	req := &txn.Request{}
	req.ID = r.Uint64()
	req.Proc = r.String()
	req.Args = r.Int64s()
	return req, r.Err()
}

// encodeRouteResult serializes the routed transaction's outcome,
// including the abort Detail — the node-naming attribution must survive
// the route hop or routed aborts would reach the client unattributed.
func encodeRouteResult(res *txn.Result) []byte {
	w := wire.NewWriter(64)
	w.Bool(res.Committed)
	w.Uint8(uint8(res.Reason))
	w.Bool(res.Distributed)
	w.String(res.Detail)
	res.Reads.Encode(w)
	return w.Bytes()
}

func decodeRouteResult(p []byte) (txn.Result, error) {
	r := wire.NewReader(p)
	res := txn.Result{}
	res.Committed = r.Bool()
	res.Reason = txn.AbortReason(r.Uint8())
	res.Distributed = r.Bool()
	res.Detail = r.String()
	res.Reads = txn.DecodeReadSet(r)
	return res, r.Err()
}

// route ships the request to its inner host for coordination there
// (§4.2's transaction placement). ok=false means routing could not be
// attempted and the caller should coordinate locally.
func (e *Engine) route(host transport.NodeID, req *txn.Request) (txn.Result, bool) {
	start := time.Now()
	raw, err := e.node.Endpoint().Call(host, server.VerbTxnRoute, encodeRouteRequest(req))
	e.node.VerbMetrics().Observe(server.KindRoute, time.Since(start))
	if err != nil {
		return txn.Result{}, false
	}
	res, derr := decodeRouteResult(raw)
	if derr != nil {
		return txn.Result{Reason: txn.AbortInternal}, true
	}
	return res, true
}

// RegisterVerbs installs the inner-region execution handler on a node.
// Every node that can host an inner region needs it.
func RegisterVerbs(n *server.Node) {
	n.Endpoint().HandleAsync(server.VerbInnerExec, func(_ transport.NodeID, raw []byte, reply func([]byte, error)) {
		// Inner execution is the heaviest handler in the system, so
		// neither it nor its request decode may run inline on the
		// fabric's dispatcher. On a single-lane node the lane is known
		// without decoding, so the whole request (decode included)
		// ships straight to lane 0; on a multi-lane node a fresh
		// goroutine decodes and decides the lane, then submits the
		// region to the owning lane's serial executor with the reply
		// firing from the lane (pre-submission order is irrelevant —
		// same-lane order is established by the submission itself).
		// Ordering of the replication stream is guaranteed per lane
		// (commit order == stream order on a lane; cross-lane conflicts
		// are ordered by the bucket locks held across the stream send),
		// not by delivery order.
		serve := func(raw []byte) {
			req, err := decodeInnerRequest(raw)
			if err != nil {
				reply(nil, err)
				return
			}
			proc := n.Registry().Lookup(req.Proc)
			if proc == nil {
				reply((&innerResponse{Reason: txn.AbortInternal}).encode(), nil)
				return
			}
			// req.Reads was freshly decoded, so the inner region
			// extends it in place; collect gathers the inner reads for
			// the response.
			collect := make(txn.ReadSet, len(req.InnerOps))
			exec := func() {
				resp, wait := execInnerLocked(n, req.TxnID, req.Coord, proc, req.Args, req.InnerOps, req.Reads, collect)
				if wait == nil {
					reply(resp.encode(), nil)
					return
				}
				// The reply is the region's commit acknowledgement:
				// hold it until the WAL flush lands, but on a fresh
				// goroutine so the lane executor moves on to the next
				// inner region while this one's fsync batch is pending.
				go func() {
					if err := wait(); err != nil {
						panic(fmt.Sprintf("core: inner commit %d not durable: %v", req.TxnID, err))
					}
					reply(resp.encode(), nil)
				}()
			}
			if n.NumLanes() <= 1 {
				exec() // already on lane 0
				return
			}
			n.SubmitLane(innerLane(n, proc, req.Args, req.InnerOps, req.Reads), exec)
		}
		if n.NumLanes() <= 1 {
			n.SubmitLane(0, func() { serve(raw) })
			return
		}
		go serve(raw)
	})
}

// innerLane picks the execution lane that serializes an inner region:
// the lane owning the region's most contended record (by the §4.4
// lookup table's weight), so all inner regions competing for the same
// hot record land on the same single-threaded lane and never NO_WAIT-
// abort each other — the per-lane restatement of the paper's
// single-threaded-engine argument. Records whose keys depend on inner
// reads are skipped (unresolvable pre-execution); a region with no
// resolvable key runs on lane 0. Conflicts between regions placed on
// different lanes (overlap on a record that is hottest in neither) are
// still arbitrated by the bucket lock words, backed by the
// coordinator's bounded re-request ladder.
func innerLane(n *server.Node, proc *txn.Procedure, args txn.Args, innerOps []int, reads txn.ReadSet) int {
	dir := n.Directory()
	if dir.Lanes() <= 1 {
		return 0
	}
	lane, bestW := 0, -1.0
	for _, opID := range innerOps {
		if opID < 0 || opID >= len(proc.Ops) {
			continue
		}
		op := &proc.Ops[opID]
		key, ok := op.Key(args, reads)
		if !ok {
			continue
		}
		rid := storage.RID{Table: op.Table, Key: key}
		if w := dir.HotWeight(rid); w > bestW {
			bestW = w
			lane = dir.Lane(rid)
		}
	}
	return lane
}

// execInner delegates the inner region: a direct call when the inner host
// is this node (the common case after contention-aware partitioning — the
// coordinator was placed with the hot data), an RPC otherwise. On the
// direct path the coordinator's read set is extended in place and the
// response carries no separate read set.
func (e *Engine) execInner(innerNode transport.NodeID, req *innerRequest) *innerResponse {
	if innerNode == e.node.ID() {
		return ExecInnerLocal(e.node, req.TxnID, req.Coord, req.Proc, req.Args, req.InnerOps, req.Reads, nil)
	}
	start := time.Now()
	raw, err := e.node.Endpoint().Call(innerNode, server.VerbInnerExec, req.encode())
	e.node.VerbMetrics().Observe(server.KindInnerExec, time.Since(start))
	if err != nil {
		return &innerResponse{
			Reason: server.TransportAbortReason(err),
			detail: fmt.Sprintf("inner exec at node %d: %v", innerNode, err),
		}
	}
	resp, derr := decodeInnerResponse(raw)
	if derr != nil {
		return &innerResponse{Reason: txn.AbortInternal, detail: fmt.Sprintf("inner exec at node %d: %v", innerNode, derr)}
	}
	return resp
}

// ExecInnerLocal executes and unilaterally commits an inner region on
// this node. It is exported for the benchmark harness's single-node
// ablations.
//
// Execution acquires bucket locks even inside the inner region (the
// paper's "general execution model", end of §3.3): static analysis alone
// cannot guarantee that no other transaction touches these records in an
// outer region, and the lock cost is negligible next to a message delay.
// The inner region's locks are tracked privately (never in the node's
// participant-state map), so committing the inner region cannot release
// outer locks the coordinator may hold on this same node under the same
// transaction id.
//
// reads is the working read set (the outer region's values on entry); it
// is extended IN PLACE with the inner region's reads, which lets a
// co-located coordinator hand over its own read set and skip both the
// defensive copy and the merge. The returned response's Reads aliases
// collect when non-nil (the RPC path's response set) and is nil
// otherwise.
func ExecInnerLocal(n *server.Node, txnID uint64, coord transport.NodeID, procName string, args txn.Args, innerOps []int, reads txn.ReadSet, collect txn.ReadSet) *innerResponse {
	proc := n.Registry().Lookup(procName)
	if proc == nil {
		return &innerResponse{Reason: txn.AbortInternal}
	}
	if reads == nil {
		reads = make(txn.ReadSet, len(innerOps))
	}
	// The whole inner region — lock, execute, commit, stream — runs on
	// the serial executor of the lane owning its hottest record,
	// modelling the paper's single-threaded execution engines (one per
	// core, several per node): inner regions competing for the same hot
	// record never abort each other, regions on distinct lanes proceed
	// in parallel, and the replication stream leaves each lane in commit
	// order.
	var resp *innerResponse
	var wait func() error
	n.WithLaneSerial(innerLane(n, proc, args, innerOps, reads), func() {
		resp, wait = execInnerLocked(n, txnID, coord, proc, args, innerOps, reads, collect)
	})
	// Durability wait off the lane, on the coordinator's goroutine: the
	// lane is free to run the next inner region while this commit's
	// group flush lands, and the coordinator cannot acknowledge (or
	// build outer writes on) the region before it is durable.
	if wait != nil {
		if err := wait(); err != nil {
			panic(fmt.Sprintf("core: inner commit %d not durable: %v", txnID, err))
		}
	}
	return resp
}

// innerLockRef is one bucket lock held by an in-flight inner region.
// Inner regions keep their lock set in a local slice instead of the
// node's participant-state map: they never outlive the call (commit or
// abort happens before returning, under the inner-execution mutex), so
// the map bookkeeping, its locking, and the per-op LockResponse
// allocations of the general path are pure overhead here — and on the
// coordinator hot path that overhead dominated the profile.
type innerLockRef struct {
	b    *storage.Bucket
	mode storage.LockMode
}

// execInnerLocked runs the inner region on the current goroutine (the
// owning lane's executor). The second return is the durability wait for
// the unilateral commit — nil when nothing needs flushing — which the
// caller must complete off-lane before acknowledging the region.
func execInnerLocked(n *server.Node, txnID uint64, coord transport.NodeID, proc *txn.Procedure, args txn.Args, innerOps []int, reads txn.ReadSet, collect txn.ReadSet) (*innerResponse, func() error) {
	var pending map[storage.RID][]byte // read-your-own-writes, lazily built
	writes := make([]server.WriteOp, 0, len(innerOps))
	locks := make([]innerLockRef, 0, len(innerOps))
	// The partition whose replicas receive this region's stream. Every
	// inner op targets the single delegated partition; resolve it from
	// the first op's record rather than this node's identity, which
	// diverge after a replica promotion (the new primary executes inner
	// regions for the adopted partition). Falls back to the node's own
	// partition for a region with no ops.
	innerPID := n.Partition()
	innerPIDSet := false
	// entered tracks the partition pin taken at innerPID resolution; the
	// pin holds the handoff fence open (DrainPartition waits it out), so
	// a mid-flight partition move can never flip routing under a region
	// that is about to unilaterally commit here.
	entered := false

	release := func() {
		for _, l := range locks {
			l.b.Lock.Unlock(l.mode)
		}
		if entered {
			n.LeavePartition(innerPID)
			entered = false
		}
	}
	abort := func(reason txn.AbortReason) *innerResponse {
		release()
		return &innerResponse{Reason: reason}
	}
	// lock acquires b in the requested mode, deduplicating against locks
	// this inner region already holds (same semantics as the participant
	// state's hasLock: shared is covered by exclusive, shared→exclusive
	// upgrades in place). The lock word still arbitrates against outer
	// regions and remote coordinators.
	lock := func(b *storage.Bucket, mode storage.LockMode) bool {
		for i := range locks {
			if locks[i].b != b {
				continue
			}
			if locks[i].mode == storage.LockExclusive || mode == storage.LockShared {
				return true
			}
			if !b.Lock.Upgrade() {
				return false
			}
			locks[i].mode = storage.LockExclusive
			return true
		}
		if b.Lock.TryLock(mode) {
			locks = append(locks, innerLockRef{b: b, mode: mode})
			return true
		}
		// Conflict — possibly with OURSELVES: an inner record may share
		// a bucket with a record the same transaction's outer region has
		// already locked on this node (records are disjoint, buckets are
		// hashed), and NO_WAIT against our own outer lock would
		// self-abort the transaction on every retry, forever. Borrow the
		// outer hold instead: a sufficient mode is free; held-shared
		// upgrades in place with the participant state's bookkeeping
		// updated so the outer release matches. Borrowed buckets are not
		// tracked in `locks` — they stay locked until the outer region
		// commits or aborts, which is exactly the span the colliding
		// outer record needs anyway. The check runs only on conflict, so
		// the common no-collision path costs nothing.
		heldMode, held := n.HeldLockMode(txnID, b)
		if !held {
			return false
		}
		if heldMode == storage.LockExclusive || mode == storage.LockShared {
			return true
		}
		if !b.Lock.Upgrade() {
			return false
		}
		n.PromoteHeldLock(txnID, b)
		return true
	}

	for _, opID := range innerOps {
		if opID < 0 || opID >= len(proc.Ops) {
			return abort(txn.AbortInternal), nil
		}
		op := &proc.Ops[opID]
		key, ok := op.Key(args, reads)
		if !ok {
			return abort(txn.AbortInternal), nil
		}
		tbl := n.Store().Table(op.Table)
		if tbl == nil {
			return abort(txn.AbortInternal), nil
		}
		if !innerPIDSet {
			innerPID = n.Directory().Partition(storage.RID{Table: op.Table, Key: key})
			innerPIDSet = true
			// Fenced (mid-handoff) or no longer primary: the region must
			// re-route. AbortMoved is retryable at the client, and the
			// retry re-reads the directory, landing on the new primary.
			if !n.EnterPartition(innerPID) {
				return abort(txn.AbortMoved), nil
			}
			entered = true
		}
		b := tbl.Bucket(key)
		if !lock(b, op.Type.LockMode()) {
			return abort(txn.AbortLockConflict), nil
		}

		read := op.Type == txn.OpRead || op.Type == txn.OpUpdate
		if read || op.Type != txn.OpInsert {
			rid := storage.RID{Table: op.Table, Key: key}
			v, pend := pending[rid]
			if !pend {
				var err error
				v, _, err = b.Get(key)
				if err != nil {
					if op.Type != txn.OpInsert {
						return abort(txn.AbortNotFound), nil
					}
					v = nil
				}
			}
			if read {
				reads[opID] = v
				if collect != nil {
					collect[opID] = v
				}
			}
		}
		if op.Check != nil {
			if err := op.Check(reads[opID], args, reads); err != nil {
				return abort(txn.AbortConstraint), nil
			}
		}
		if op.Type.IsWrite() {
			var newVal []byte
			if op.Type != txn.OpDelete {
				var old []byte
				if op.Type == txn.OpUpdate {
					old = reads[opID]
				}
				nv, err := op.Mutate(old, args, reads)
				if err != nil {
					return abort(txn.AbortConstraint), nil
				}
				newVal = nv
			}
			if pending == nil {
				pending = make(map[storage.RID][]byte, len(innerOps))
			}
			pending[storage.RID{Table: op.Table, Key: key}] = newVal
			writes = append(writes, server.WriteOp{
				Table: op.Table, Key: key, Type: op.Type, Value: newVal,
			})
		}
	}

	// Unilateral commit: stream to the replicas, apply the writes, and
	// release the inner locks. From the apply onward the transaction is
	// committed (§3.3 step 4); the outer region can no longer abort it.
	if n.FaultInjector != nil {
		if err := n.FaultInjector(server.VerbCommit, txnID); err != nil {
			release()
			return &innerResponse{Reason: txn.AbortInternal}, nil
		}
	}

	// Reserve the transaction's commit timestamp here — under the inner
	// region's bucket locks, past the last abortable check — so per-key
	// timestamp order equals lock order on the hot records. The stamp
	// covers the inner stream, the local apply, and (carried back in the
	// response) every outer apply; the coordinator releases it at the end
	// of its commit tail. The re-request ladder cannot double-reserve: a
	// lock conflict aborts before this point, and a committed region
	// (reserved) answers OK, which ends the ladder. The two failure paths
	// below release immediately — they apply nothing anywhere.
	var ts uint64
	clock := n.Clock()
	if clock != nil {
		ts = clock.Reserve()
	}

	// Stream the new values to this partition's replicas without
	// waiting; replicas acknowledge to the coordinator (Figure 6). The
	// stream is enqueued *before* the local apply and before the bucket
	// locks release, for two load-bearing reasons: (a) conflicting inner
	// regions (on other lanes, or outer regions of other transactions)
	// are serialized only by these locks, so sending under them keeps
	// stream order equal to commit order for every record (per-link FIFO
	// delivery and per-lane replica apply do the rest); and (b) the send
	// is the last step that can fail (fabric closing, partition window) —
	// failing it before anything is applied lets the inner region abort
	// cleanly instead of stranding a half-applied transaction that the
	// coordinator reports as aborted. The send is a local enqueue and
	// never waits on the network.
	// Capture the stream targets once, while the bucket locks (and the
	// partition pin) are held: the same snapshot sizes the coordinator's
	// ack wait (Streamed, below) and receives the sends, so a warming
	// replica added mid-handoff is either in both or in neither.
	targets := n.Directory().Topology().StreamTargets(innerPID)
	streamed := 0
	if len(writes) > 0 {
		sent, err := n.StreamInnerRepl(targets, txnID, ts, coord, writes)
		if err != nil {
			if sent > 0 {
				// A partially-sent stream means some replica will apply a
				// write set this abort disowns; no compensation exists, so
				// surface the invariant violation (only reachable by a
				// blunt-mode partition or a mid-traffic fabric Close —
				// every fault plan protects the stream).
				panic(fmt.Sprintf("core: inner replication stream partially sent (%d replicas) then failed (txn %d): %v", sent, txnID, err))
			}
			release()
			if clock != nil {
				clock.Release(ts)
			}
			return &innerResponse{Reason: txn.AbortInternal}, nil
		}
		streamed = sent
	}
	if err := server.ApplyWrites(n.Store(), ts, writes); err != nil {
		// A write to a locked, verified record cannot legitimately fail;
		// engine invariant violation.
		release()
		if clock != nil {
			clock.Release(ts)
		}
		return &innerResponse{Reason: txn.AbortInternal}, nil
	}
	// Append to the lane's WAL while the bucket locks are still held —
	// log order must equal commit order — then release. The flush wait
	// is returned to the caller: the inner region's reply is its commit
	// acknowledgement, so the reply must not leave the node before the
	// record is durable, but the wait must happen OFF this lane's
	// executor (blocking it would cap the lane at one inner region per
	// fsync batch; see ExecInnerLocal and RegisterVerbs).
	wait := n.LogWrites(txnID, ts, writes)
	release()
	// A region with no writes streamed nothing; Streamed = 0 resolves the
	// coordinator's pending ack wait immediately (no self-ack loop — the
	// coordinator no longer guesses the replica count from its own
	// topology view).
	return &innerResponse{OK: true, Reads: collect, TS: ts, Streamed: streamed}, wait
}
