package core

import (
	"github.com/chillerdb/chiller/internal/server"
	"github.com/chillerdb/chiller/internal/simnet"
	"github.com/chillerdb/chiller/internal/storage"
	"github.com/chillerdb/chiller/internal/txn"
	"github.com/chillerdb/chiller/internal/wire"
)

// innerRequest is the RPC the coordinator sends to the inner host
// (step 4 of §3.3): "all information needed to execute and commit the
// transaction (transaction ID, all remaining operation IDs, input
// parameters, etc.)".
type innerRequest struct {
	TxnID    uint64
	Coord    simnet.NodeID
	Proc     string
	Args     txn.Args
	InnerOps []int
	Reads    txn.ReadSet // outer-region values the inner ops may need
}

func (r *innerRequest) encode() []byte {
	w := wire.NewWriter(128)
	w.Uint64(r.TxnID)
	w.Uint32(uint32(r.Coord))
	w.String(r.Proc)
	w.Int64s(r.Args)
	w.Ints(r.InnerOps)
	r.Reads.Encode(w)
	return w.Bytes()
}

func decodeInnerRequest(p []byte) (*innerRequest, error) {
	r := wire.NewReader(p)
	req := &innerRequest{}
	req.TxnID = r.Uint64()
	req.Coord = simnet.NodeID(r.Uint32())
	req.Proc = r.String()
	req.Args = r.Int64s()
	req.InnerOps = r.Ints()
	req.Reads = txn.DecodeReadSet(r)
	return req, r.Err()
}

// innerResponse reports the inner host's unilateral decision plus the
// values it read (the coordinator needs them to materialize outer writes
// with v-deps on the inner region — e.g. Figure 4's cost value flowing
// back to the customer-balance update).
type innerResponse struct {
	OK     bool
	Reason txn.AbortReason
	Reads  txn.ReadSet
}

func (r *innerResponse) encode() []byte {
	w := wire.NewWriter(64)
	w.Bool(r.OK)
	w.Uint8(uint8(r.Reason))
	r.Reads.Encode(w)
	return w.Bytes()
}

func decodeInnerResponse(p []byte) (*innerResponse, error) {
	r := wire.NewReader(p)
	resp := &innerResponse{}
	resp.OK = r.Bool()
	resp.Reason = txn.AbortReason(r.Uint8())
	resp.Reads = txn.DecodeReadSet(r)
	return resp, r.Err()
}

// RegisterVerbs installs the inner-region execution handler on a node.
// Every node that can host an inner region needs it.
func RegisterVerbs(n *server.Node) {
	n.Endpoint().Handle(server.VerbInnerExec, func(_ simnet.NodeID, raw []byte) ([]byte, error) {
		req, err := decodeInnerRequest(raw)
		if err != nil {
			return nil, err
		}
		// The handler runs on the fabric's delivery goroutine; inner
		// execution is purely local and fast (that is the whole point),
		// so executing inline preserves per-link ordering without
		// stalling other traffic meaningfully. Long-running handlers
		// would spawn; this one must not, because the one-way
		// replication stream it emits must stay ordered with respect to
		// subsequent inner regions on this host.
		resp := ExecInnerLocal(n, req.TxnID, req.Coord, req.Proc, req.Args, req.InnerOps, req.Reads)
		return resp.encode(), nil
	})
}

// execInner delegates the inner region: a direct call when the inner host
// is this node (the common case after contention-aware partitioning — the
// coordinator was placed with the hot data), an RPC otherwise.
func (e *Engine) execInner(innerNode simnet.NodeID, req *innerRequest) *innerResponse {
	if innerNode == e.node.ID() {
		return ExecInnerLocal(e.node, req.TxnID, req.Coord, req.Proc, req.Args, req.InnerOps, req.Reads)
	}
	raw, err := e.node.Endpoint().Call(innerNode, server.VerbInnerExec, req.encode())
	if err != nil {
		return &innerResponse{Reason: txn.AbortInternal}
	}
	resp, derr := decodeInnerResponse(raw)
	if derr != nil {
		return &innerResponse{Reason: txn.AbortInternal}
	}
	return resp
}

// ExecInnerLocal executes and unilaterally commits an inner region on
// this node. It is exported for the benchmark harness's single-node
// ablations.
//
// Execution acquires bucket locks even inside the inner region (the
// paper's "general execution model", end of §3.3): static analysis alone
// cannot guarantee that no other transaction touches these records in an
// outer region, and the lock cost is negligible next to a message delay.
// The locks live in a separate namespace (innerIDBit) so committing the
// inner region does not release outer locks the coordinator may hold on
// this same node under the same transaction id.
func ExecInnerLocal(n *server.Node, txnID uint64, coord simnet.NodeID, procName string, args txn.Args, innerOps []int, shipped txn.ReadSet) *innerResponse {
	proc := n.Registry().Lookup(procName)
	if proc == nil {
		return &innerResponse{Reason: txn.AbortInternal}
	}
	innerID := txnID | innerIDBit

	reads := shipped.Clone()
	innerReads := make(txn.ReadSet)
	pending := make(map[storage.RID][]byte)
	var writes []server.WriteOp

	abort := func(reason txn.AbortReason) *innerResponse {
		n.AbortLocal(innerID)
		return &innerResponse{Reason: reason}
	}

	for _, opID := range innerOps {
		if opID < 0 || opID >= len(proc.Ops) {
			return abort(txn.AbortInternal)
		}
		op := &proc.Ops[opID]
		key, ok := op.Key(args, reads)
		if !ok {
			return abort(txn.AbortInternal)
		}
		rid := storage.RID{Table: op.Table, Key: key}

		entry := server.LockEntry{
			OpID:      opID,
			Table:     op.Table,
			Key:       key,
			Mode:      op.Type.LockMode(),
			Read:      op.Type == txn.OpRead || op.Type == txn.OpUpdate,
			MustExist: op.Type != txn.OpInsert,
		}
		resp := n.LockReadLocal(innerID, []server.LockEntry{entry})
		if !resp.OK {
			return abort(resp.Reason)
		}
		if entry.Read {
			var v []byte
			if pv, ok := pending[rid]; ok {
				v = pv
			} else {
				v = resp.Reads[opID]
			}
			reads[opID] = v
			innerReads[opID] = v
		}
		if op.Check != nil {
			if err := op.Check(reads[opID], args, reads); err != nil {
				return abort(txn.AbortConstraint)
			}
		}
		if op.Type.IsWrite() {
			var newVal []byte
			if op.Type != txn.OpDelete {
				var old []byte
				if op.Type == txn.OpUpdate {
					old = reads[opID]
				}
				nv, err := op.Mutate(old, args, reads)
				if err != nil {
					return abort(txn.AbortConstraint)
				}
				newVal = nv
			}
			pending[rid] = newVal
			writes = append(writes, server.WriteOp{
				Table: op.Table, Key: key, Type: op.Type, Value: newVal,
			})
		}
	}

	// Unilateral commit: apply the writes and release the inner locks.
	// From this instant the transaction is committed (§3.3 step 4); the
	// outer region can no longer abort it.
	if err := n.CommitLocal(innerID, writes); err != nil {
		// CommitLocal only fails on engine invariant violations.
		return &innerResponse{Reason: txn.AbortInternal}
	}

	// Stream the new values to this partition's replicas without
	// waiting; replicas acknowledge to the coordinator (Figure 6).
	if len(writes) > 0 {
		if _, err := n.StreamInnerRepl(n.Partition(), txnID, coord, writes); err != nil {
			return &innerResponse{Reason: txn.AbortInternal}
		}
	} else {
		// Nothing to replicate: satisfy the coordinator's ack
		// expectation directly so it does not wait forever.
		for range n.Directory().Topology().Replicas(n.Partition()) {
			_ = n.Endpoint().Send(coord, server.VerbInnerAck, server.EncodeAbort(txnID))
		}
	}
	return &innerResponse{OK: true, Reads: innerReads}
}
