// Package core implements Chiller's contention-centric two-region
// transaction execution engine — the paper's primary contribution (§3).
//
// A transaction whose records include hot items is split into an outer
// region (cold records, locked first, committed last) and an inner region
// (hot records, delegated to the single partition that owns them). The
// inner host executes and commits its part unilaterally: once the outer
// locks are all held, the transaction's fate rests entirely on the inner
// region, so the hot records' contention span shrinks from two-plus
// network round trips to the local execution time of the inner region.
//
// Fault-tolerance for the inner region's early commit point uses the
// replication protocol of §5 (see package server's inner-replication
// verbs): the inner primary streams new values to its replicas without
// waiting, the replicas acknowledge to the coordinator, and the
// coordinator only completes the outer region after those acks.
package core

import (
	"fmt"
	"sync"

	"github.com/chillerdb/chiller/internal/cc/twopl"
	"github.com/chillerdb/chiller/internal/cluster"
	"github.com/chillerdb/chiller/internal/depgraph"
	"github.com/chillerdb/chiller/internal/server"
	"github.com/chillerdb/chiller/internal/simnet"
	"github.com/chillerdb/chiller/internal/storage"
	"github.com/chillerdb/chiller/internal/txn"
)

// innerIDBit distinguishes the inner region's lock namespace from the
// outer region's on the inner host. The inner host may already hold outer
// locks for the same transaction (a cold record on the hot partition);
// those must survive the inner region's unilateral commit.
const innerIDBit = uint64(1) << 63

// Engine is Chiller's coordinator. Safe for concurrent Run calls.
type Engine struct {
	node     *server.Node
	fallback *twopl.Engine

	gmu    sync.RWMutex
	graphs map[string]*depgraph.Graph
}

// New creates a Chiller engine on a node. RegisterVerbs must have been
// called on every node in the cluster.
func New(n *server.Node) *Engine {
	return &Engine{
		node:     n,
		fallback: twopl.New(n),
		graphs:   make(map[string]*depgraph.Graph),
	}
}

// Name implements cc.Engine.
func (e *Engine) Name() string { return "Chiller" }

// Node returns the engine's node.
func (e *Engine) Node() *server.Node { return e.node }

// graph returns the cached dependency graph for a procedure, building it
// on first use (the paper builds it "when registering a new stored
// procedure"; lazy construction is equivalent and keeps registration
// order-independent).
func (e *Engine) graph(proc *txn.Procedure) (*depgraph.Graph, error) {
	e.gmu.RLock()
	g, ok := e.graphs[proc.Name]
	e.gmu.RUnlock()
	if ok {
		return g, nil
	}
	g, err := depgraph.Build(proc)
	if err != nil {
		return nil, err
	}
	e.gmu.Lock()
	e.graphs[proc.Name] = g
	e.gmu.Unlock()
	return g, nil
}

// resolver adapts the directory to the static-analysis interface: an
// op's partition is known pre-execution when its key resolves from args
// alone, or when it declares a partition-affinity hint (PartKey).
func (e *Engine) resolver() depgraph.PartitionResolver {
	dir := e.node.Directory()
	return func(op *txn.OpSpec, args txn.Args) (int, bool) {
		if key, ok := op.Key(args, nil); ok {
			return int(dir.Partition(storage.RID{Table: op.Table, Key: key})), true
		}
		if op.PartKey != nil {
			if pk, ok := op.PartKey(args, nil); ok {
				pt := op.PartTable
				if pt == 0 {
					pt = op.Table
				}
				return int(dir.Partition(storage.RID{Table: pt, Key: pk})), true
			}
		}
		return 0, false
	}
}

// hotFunc consults the lookup table of §4.4.
func (e *Engine) hotFunc() depgraph.HotFunc {
	dir := e.node.Directory()
	return func(op *txn.OpSpec, args txn.Args) bool {
		key, ok := op.Key(args, nil)
		if !ok {
			return false
		}
		return dir.IsHot(storage.RID{Table: op.Table, Key: key})
	}
}

// Decide exposes the run-time region decision for a request (used by the
// benchmark harness and tests to inspect planned regions).
func (e *Engine) Decide(req *txn.Request) (depgraph.Decision, error) {
	proc := e.node.Registry().Lookup(req.Proc)
	if proc == nil {
		return depgraph.Decision{}, fmt.Errorf("core: unknown procedure %q", req.Proc)
	}
	g, err := e.graph(proc)
	if err != nil {
		return depgraph.Decision{}, err
	}
	return depgraph.Decide(g, req.Args, e.resolver(), e.hotFunc()), nil
}

// Run implements cc.Engine: steps 1-5 of §3.3.
func (e *Engine) Run(req *txn.Request) txn.Result {
	n := e.node
	proc := n.Registry().Lookup(req.Proc)
	if proc == nil {
		return txn.Result{Reason: txn.AbortInternal}
	}
	g, err := e.graph(proc)
	if err != nil {
		return txn.Result{Reason: txn.AbortInternal}
	}

	// Step 1-2: decide execution model and the inner host.
	dec := depgraph.Decide(g, req.Args, e.resolver(), e.hotFunc())
	if !dec.TwoRegion {
		// Cold transaction: normal 2PL with 2PC.
		order := make([]int, len(proc.Ops))
		for i := range order {
			order[i] = i
		}
		return e.fallback.RunOrdered(req, proc, order)
	}

	txnID := req.ID
	if txnID == 0 {
		txnID = n.NextTxnID()
	}

	dir := n.Directory()
	topo := dir.Topology()
	innerPID := cluster.PartitionID(dec.InnerHost)
	innerNode := topo.Primary(innerPID)

	st := outerState{
		reads:        make(txn.ReadSet, len(proc.Ops)),
		pending:      make(map[storage.RID][]byte),
		participants: make(map[simnet.NodeID]bool),
		partOfNode:   make(map[simnet.NodeID]cluster.PartitionID),
		ridOf:        make(map[int]storage.RID),
		pids:         map[cluster.PartitionID]bool{innerPID: true},
	}

	// Step 3: read and lock the outer region. Within the outer region the
	// lock order is itself re-ordered hot-last (§3: locks on the most
	// contended records are acquired last "if possible"): a hot record
	// that could not join the inner region still gets the shortest span
	// the outer region can give it.
	outerOrder := e.hotLastOrder(g, req.Args, dec.OuterOps)
	if reason, ok := e.lockOuter(proc, req.Args, txnID, outerOrder, &st); !ok {
		n.AbortAll(st.participants, txnID)
		return txn.Result{Reason: reason, Distributed: st.isDistributed()}
	}

	// Step 4: delegate, execute, and commit the inner region. Register
	// the replica-ack waiter first so acks cannot race registration.
	replicas := topo.Replicas(innerPID)
	ackCh := n.ExpectInnerAcks(txnID, len(replicas))

	ireq := &innerRequest{
		TxnID:    txnID,
		Coord:    n.ID(),
		Proc:     proc.Name,
		Args:     req.Args,
		InnerOps: dec.InnerOps,
		Reads:    st.reads,
	}
	iresp := e.execInner(innerNode, ireq)
	if !iresp.OK {
		n.CancelInnerAcks(txnID)
		n.AbortAll(st.participants, txnID)
		return txn.Result{Reason: iresp.Reason, Distributed: st.isDistributed()}
	}
	for id, v := range iresp.Reads {
		st.reads[id] = v
	}

	// The transaction is now committed (the inner host decided). The
	// steps below cannot abort it; a failure here is an engine invariant
	// violation, not a transaction abort.

	// Step 5: commit the outer region. Compute the deferred outer writes
	// — their mutators may consume values produced by the inner region.
	writes, err := e.materializeOuterWrites(proc, req.Args, dec.OuterOps, &st)
	if err != nil {
		// Mutators of outer write ops must be infallible once the inner
		// region has committed (all value constraints belong in reads'
		// Check hooks or inner mutators). Surface loudly.
		panic(fmt.Sprintf("core: outer mutate failed after inner commit (txn %d, proc %s): %v", txnID, proc.Name, err))
	}

	// Wait for the inner region's replicas to acknowledge (to us, the
	// coordinator — Figure 6) before completing the transaction.
	<-ackCh

	if err := e.replicateOuter(txnID, writes); err != nil {
		panic(fmt.Sprintf("core: outer replication failed after inner commit: %v", err))
	}
	if err := e.commitOuter(txnID, writes, &st); err != nil {
		panic(fmt.Sprintf("core: outer commit failed after inner commit: %v", err))
	}
	n.SampleCommit(st.readRIDs, st.writeRIDs)
	return txn.Result{Committed: true, Reads: st.reads, Distributed: st.isDistributed()}
}

// hotLastOrder re-orders the outer ops so cold records are locked first
// and hot records last, provided the result still satisfies every pk-dep
// (v-deps never restrict order, §3.2). If the reorder is illegal it
// returns the original ascending order.
func (e *Engine) hotLastOrder(g *depgraph.Graph, args txn.Args, outerOps []int) []int {
	hot := e.hotFunc()
	proc := g.Proc()
	anyHot := false
	for _, op := range outerOps {
		if hot(&proc.Ops[op], args) {
			anyHot = true
			break
		}
	}
	if !anyHot {
		return outerOps
	}
	reordered := make([]int, 0, len(outerOps))
	var hotOps []int
	for _, op := range outerOps {
		if hot(&proc.Ops[op], args) {
			hotOps = append(hotOps, op)
		} else {
			reordered = append(reordered, op)
		}
	}
	reordered = append(reordered, hotOps...)
	// Legality check over the full execution order implied for this
	// transaction: reordered outer ops must still respect pk-deps among
	// themselves (inner ops run after and are unaffected).
	pos := make(map[int]int, len(reordered))
	for i, op := range reordered {
		pos[op] = i
	}
	for _, op := range reordered {
		for _, dep := range proc.Ops[op].PKDeps {
			if p, ok := pos[dep]; ok && p > pos[op] {
				return outerOps // illegal: keep original order
			}
		}
	}
	return reordered
}

type outerState struct {
	reads        txn.ReadSet
	pending      map[storage.RID][]byte
	participants map[simnet.NodeID]bool
	partOfNode   map[simnet.NodeID]cluster.PartitionID
	ridOf        map[int]storage.RID
	pids         map[cluster.PartitionID]bool
	readRIDs     []storage.RID
	writeRIDs    []storage.RID
}

func (st *outerState) isDistributed() bool { return len(st.pids) > 1 }

// lockOuter acquires locks and performs reads for the outer ops, batching
// consecutive same-participant ops into one round trip. Writes are not
// materialized here — outer mutators may depend on inner reads.
func (e *Engine) lockOuter(proc *txn.Procedure, args txn.Args, txnID uint64, outerOps []int, st *outerState) (txn.AbortReason, bool) {
	n := e.node
	dir := n.Directory()
	topo := dir.Topology()

	for idx := 0; idx < len(outerOps); {
		var batch []server.LockEntry
		var batchOps []int
		var target simnet.NodeID
		var pid cluster.PartitionID
		for j := idx; j < len(outerOps); j++ {
			op := &proc.Ops[outerOps[j]]
			key, ok := op.Key(args, st.reads)
			if !ok {
				if j == idx {
					return txn.AbortInternal, false
				}
				break
			}
			rid := storage.RID{Table: op.Table, Key: key}
			p := dir.Partition(rid)
			t := topo.Primary(p)
			if j == idx {
				target, pid = t, p
			} else if t != target {
				break
			}
			batch = append(batch, server.LockEntry{
				OpID:      op.ID,
				Table:     op.Table,
				Key:       key,
				Mode:      op.Type.LockMode(),
				Read:      op.Type == txn.OpRead || op.Type == txn.OpUpdate,
				MustExist: op.Type != txn.OpInsert,
			})
			batchOps = append(batchOps, outerOps[j])
			st.ridOf[op.ID] = rid
		}
		st.participants[target] = true
		st.partOfNode[target] = pid
		st.pids[pid] = true

		resp, err := n.LockRead(target, txnID, batch)
		if err != nil {
			return txn.AbortInternal, false
		}
		if !resp.OK {
			return resp.Reason, false
		}
		for _, opID := range batchOps {
			op := &proc.Ops[opID]
			if op.Type == txn.OpRead || op.Type == txn.OpUpdate {
				rid := st.ridOf[opID]
				if pv, ok := st.pending[rid]; ok {
					st.reads[opID] = pv
				} else {
					st.reads[opID] = resp.Reads[opID]
				}
				st.readRIDs = append(st.readRIDs, rid)
			}
			if op.Check != nil {
				if err := op.Check(st.reads[opID], args, st.reads); err != nil {
					return txn.AbortConstraint, false
				}
			}
		}
		idx += len(batch)
	}
	return txn.AbortNone, true
}

// materializeOuterWrites runs the deferred outer mutators, now that both
// outer and inner reads are available, and groups writes by partition.
func (e *Engine) materializeOuterWrites(proc *txn.Procedure, args txn.Args, outerOps []int, st *outerState) (map[cluster.PartitionID][]server.WriteOp, error) {
	dir := e.node.Directory()
	writes := make(map[cluster.PartitionID][]server.WriteOp)
	for _, opID := range outerOps {
		op := &proc.Ops[opID]
		if !op.Type.IsWrite() {
			continue
		}
		rid, ok := st.ridOf[opID]
		if !ok {
			return nil, fmt.Errorf("core: outer write op %d has no resolved rid", opID)
		}
		var newVal []byte
		if op.Type != txn.OpDelete {
			var old []byte
			if op.Type == txn.OpUpdate {
				old = st.reads[opID]
			}
			nv, err := op.Mutate(old, args, st.reads)
			if err != nil {
				return nil, err
			}
			newVal = nv
		}
		st.pending[rid] = newVal
		pid := dir.Partition(rid)
		writes[pid] = append(writes[pid], server.WriteOp{
			Table: op.Table, Key: rid.Key, Type: op.Type, Value: newVal,
		})
		st.writeRIDs = append(st.writeRIDs, rid)
	}
	return writes, nil
}

func (e *Engine) replicateOuter(txnID uint64, writes map[cluster.PartitionID][]server.WriteOp) error {
	if len(writes) == 0 {
		return nil
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(writes))
	for pid, ws := range writes {
		wg.Add(1)
		go func(pid cluster.PartitionID, ws []server.WriteOp) {
			defer wg.Done()
			if err := e.node.Replicate(pid, txnID, ws); err != nil {
				errs <- err
			}
		}(pid, ws)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

func (e *Engine) commitOuter(txnID uint64, writes map[cluster.PartitionID][]server.WriteOp, st *outerState) error {
	var calls []*simnet.Call
	for target := range st.participants {
		pid := st.partOfNode[target]
		c, err := e.node.CommitAsync(target, txnID, writes[pid])
		if err != nil {
			return err
		}
		if c != nil {
			calls = append(calls, c)
		}
	}
	for _, c := range calls {
		if _, err := c.Wait(); err != nil {
			return err
		}
	}
	return nil
}
