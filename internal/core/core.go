// Package core implements Chiller's contention-centric two-region
// transaction execution engine — the paper's primary contribution (§3).
//
// A transaction whose records include hot items is split into an outer
// region (cold records, locked first, committed last) and an inner region
// (hot records, delegated to the single partition that owns them). The
// inner host executes and commits its part unilaterally: once the outer
// locks are all held, the transaction's fate rests entirely on the inner
// region, so the hot records' contention span shrinks from two-plus
// network round trips to the local execution time of the inner region.
//
// Fault-tolerance for the inner region's early commit point uses the
// replication protocol of §5 (see package server's inner-replication
// verbs): the inner primary streams new values to its replicas without
// waiting, the replicas acknowledge to the coordinator, and the
// coordinator only completes the outer region after those acks.
package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/chillerdb/chiller/internal/cc"
	"github.com/chillerdb/chiller/internal/cc/twopl"
	"github.com/chillerdb/chiller/internal/cluster"
	"github.com/chillerdb/chiller/internal/depgraph"
	"github.com/chillerdb/chiller/internal/server"
	"github.com/chillerdb/chiller/internal/storage"
	"github.com/chillerdb/chiller/internal/transport"
	"github.com/chillerdb/chiller/internal/txn"
)

// Engine is Chiller's coordinator. Safe for concurrent Run calls.
type Engine struct {
	node     *server.Node
	fallback *twopl.Engine

	// batched routes the engine's remote fan-outs — outer lock waves,
	// the outer replica scatter, and the commit wave — over the
	// doorbell-batched one-sided path: one doorbell per destination node
	// per wave instead of one RPC per verb (§3's batched one-sided
	// verbs; see docs/NETWORK.md). The 2PL fallback for cold
	// transactions and the inner-region delegation stay two-sided either
	// way.
	batched bool

	gmu    sync.RWMutex
	graphs map[string]*depgraph.Graph

	// tails tracks background commit waves: once the inner region has
	// committed and its replicas have acked, the outer commit messages
	// are fire-and-forget from the transaction's perspective (2PC with
	// presumed commit needs no second-phase acks), so Run hands them to a
	// tail and returns. Drain joins them for tests and shutdown.
	tails sync.WaitGroup
}

// New creates a Chiller engine on a node. RegisterVerbs must have been
// called on every node in the cluster.
func New(n *server.Node) *Engine {
	e := &Engine{
		node:     n,
		fallback: twopl.New(n),
		graphs:   make(map[string]*depgraph.Graph),
	}
	// Transaction placement (§4.2): the partitioner's star graph assigns
	// every transaction's t-vertex to the partition of its inner region,
	// i.e. transactions execute where their hot records live. A request
	// originating elsewhere is routed here and coordinated by this
	// engine. The handler runs a full transaction, so it must not block
	// the fabric's dispatcher.
	n.Endpoint().HandleAsync(server.VerbTxnRoute, func(_ transport.NodeID, raw []byte, reply func([]byte, error)) {
		go func() {
			req, err := decodeRouteRequest(raw)
			if err != nil {
				reply(nil, err)
				return
			}
			// A routed request is coordinated on behalf of a remote
			// client whose context does not travel on the wire; the
			// originating engine stops routing once its context is done,
			// and a routed transaction runs to completion here.
			res := e.runPlaced(context.Background(), req)
			reply(encodeRouteResult(&res), nil)
		}()
	})
	return e
}

// Name implements cc.Engine.
func (e *Engine) Name() string { return "Chiller" }

// SetVerbBatching selects the engine's fan-out transport: batched (one
// doorbell per destination node per lock wave / replica scatter / commit
// wave) or scalar (one RPC per verb, the default). Flip it before
// serving traffic; concurrent Run calls observing a mid-flight change
// would mix transports harmlessly but unhelpfully.
func (e *Engine) SetVerbBatching(on bool) { e.batched = on }

// VerbBatching reports the engine's current fan-out transport.
func (e *Engine) VerbBatching() bool { return e.batched }

// Drain blocks until every background commit tail has finished. Call
// before tearing the fabric down or asserting a quiesced cluster.
func (e *Engine) Drain() { e.tails.Wait() }

// Node returns the engine's node.
func (e *Engine) Node() *server.Node { return e.node }

// graph returns the cached dependency graph for a procedure, building it
// on first use (the paper builds it "when registering a new stored
// procedure"; lazy construction is equivalent and keeps registration
// order-independent).
func (e *Engine) graph(proc *txn.Procedure) (*depgraph.Graph, error) {
	e.gmu.RLock()
	g, ok := e.graphs[proc.Name]
	e.gmu.RUnlock()
	if ok {
		return g, nil
	}
	g, err := depgraph.Build(proc)
	if err != nil {
		return nil, err
	}
	e.gmu.Lock()
	e.graphs[proc.Name] = g
	e.gmu.Unlock()
	return g, nil
}

// resolver adapts the directory to the static-analysis interface: an
// op's partition is known pre-execution when its key resolves from args
// alone, or when it declares a partition-affinity hint (PartKey).
func (e *Engine) resolver() depgraph.PartitionResolver {
	dir := e.node.Directory()
	return func(op *txn.OpSpec, args txn.Args) (int, bool) {
		if key, ok := op.Key(args, nil); ok {
			return int(dir.Partition(storage.RID{Table: op.Table, Key: key})), true
		}
		if op.PartKey != nil {
			if pk, ok := op.PartKey(args, nil); ok {
				pt := op.PartTable
				if pt == 0 {
					pt = op.Table
				}
				return int(dir.Partition(storage.RID{Table: pt, Key: pk})), true
			}
		}
		return 0, false
	}
}

// hotFunc consults the lookup table of §4.4, yielding each record's
// contention weight (0 for cold records).
func (e *Engine) hotFunc() depgraph.HotFunc {
	dir := e.node.Directory()
	return func(op *txn.OpSpec, args txn.Args) float64 {
		key, ok := op.Key(args, nil)
		if !ok {
			return 0
		}
		return dir.HotWeight(storage.RID{Table: op.Table, Key: key})
	}
}

// Decide exposes the run-time region decision for a request (used by the
// benchmark harness and tests to inspect planned regions).
func (e *Engine) Decide(req *txn.Request) (depgraph.Decision, error) {
	proc := e.node.Registry().Lookup(req.Proc)
	if proc == nil {
		return depgraph.Decision{}, fmt.Errorf("core: unknown procedure %q", req.Proc)
	}
	g, err := e.graph(proc)
	if err != nil {
		return depgraph.Decision{}, err
	}
	return depgraph.Decide(g, req.Args, e.resolver(), e.hotFunc()), nil
}

// Run implements cc.Engine: steps 1-5 of §3.3, preceded by the
// transaction-placement step of §4.2 — a two-region transaction whose
// inner host is another partition is routed there, so that its inner
// region executes as local work and the hot-record span never contains
// the delegation round trip.
//
// Cancellation of ctx is honored at every protocol boundary before the
// inner region commits: between outer lock waves, inside the hot-wave
// and inner re-request ladders, and before delegation. A cancelled
// transaction releases every outer lock it holds and reports
// txn.AbortCancelled. Once the inner host has committed, the transaction
// is committed; the remaining steps run to completion regardless of ctx.
func (e *Engine) Run(ctx context.Context, req *txn.Request) txn.Result {
	n := e.node
	proc := n.Registry().Lookup(req.Proc)
	if proc == nil {
		return txn.Result{Reason: txn.AbortInternal}
	}
	if proc.ReadOnly && n.Clock() != nil {
		// MVCC snapshot path: lock-free, conflict-abort-free, zero verbs
		// for replica-local partitions. Region analysis is moot — a
		// snapshot read has no contention span to shrink.
		res, err := n.RunSnapshot(ctx, *req, e.batched)
		if err != nil {
			return txn.Result{Reason: txn.AbortInternal, Detail: err.Error()}
		}
		return *res
	}
	g, err := e.graph(proc)
	if err != nil {
		return txn.Result{Reason: txn.AbortInternal}
	}

	// Step 1-2: decide execution model and the inner host.
	dec := depgraph.Decide(g, req.Args, e.resolver(), e.hotFunc())
	if !dec.TwoRegion {
		// Cold transaction: normal 2PL with 2PC.
		order := make([]int, len(proc.Ops))
		for i := range order {
			order[i] = i
		}
		return e.fallback.RunOrdered(ctx, req, proc, order)
	}
	if host := n.Directory().Topology().Primary(cluster.PartitionID(dec.InnerHost)); host != n.ID() {
		// A routed transaction executes remotely and cannot be cancelled
		// mid-flight; don't start one on a context that is already done.
		if reason, done := cc.Cancelled(ctx); done {
			return txn.Result{Reason: reason}
		}
		if res, ok := e.route(host, req); ok {
			return res
		}
		// Routing unavailable (e.g. fabric closing): coordinate from
		// here; the inner region falls back to remote delegation.
	}
	return e.runTwoRegion(ctx, req, proc, g, dec)
}

// runPlaced coordinates a routed request on this node (the request's
// inner host). The placement decision is recomputed — the directory is
// identical cluster-wide, so the result is the same, and a stale route
// (layout change mid-flight) degrades to remote delegation rather than
// a loop: requests are routed at most once.
func (e *Engine) runPlaced(ctx context.Context, req *txn.Request) txn.Result {
	proc := e.node.Registry().Lookup(req.Proc)
	if proc == nil {
		return txn.Result{Reason: txn.AbortInternal}
	}
	g, err := e.graph(proc)
	if err != nil {
		return txn.Result{Reason: txn.AbortInternal}
	}
	dec := depgraph.Decide(g, req.Args, e.resolver(), e.hotFunc())
	if !dec.TwoRegion {
		order := make([]int, len(proc.Ops))
		for i := range order {
			order[i] = i
		}
		return e.fallback.RunOrdered(ctx, req, proc, order)
	}
	return e.runTwoRegion(ctx, req, proc, g, dec)
}

// runTwoRegion executes steps 3-5 of §3.3 with this node coordinating.
func (e *Engine) runTwoRegion(ctx context.Context, req *txn.Request, proc *txn.Procedure, g *depgraph.Graph, dec depgraph.Decision) txn.Result {
	n := e.node
	txnID := req.ID
	if txnID == 0 {
		txnID = n.NextTxnID()
	}

	dir := n.Directory()
	topo := dir.Topology()
	innerPID := cluster.PartitionID(dec.InnerHost)
	innerNode := topo.Primary(innerPID)

	st := outerState{
		reads:    make(txn.ReadSet, len(proc.Ops)),
		innerPID: innerPID,
		sample:   n.Sampler() != nil,
	}

	// Step 3: read and lock the outer region. Within the outer region the
	// lock order is itself re-ordered hot-last (§3: locks on the most
	// contended records are acquired last "if possible"): a hot record
	// that could not join the inner region still gets the shortest span
	// the outer region can give it. Lock acquisition is pipelined: every
	// op the hot-last partial order allows to proceed is batched per
	// participant and fanned out in one concurrent wave.
	outerOrder := e.hotLastOrder(g, req.Args, dec.OuterOps)
	if reason, ok := e.lockOuter(ctx, proc, req.Args, txnID, outerOrder, &st); !ok {
		st.abortLocked(n, txnID)
		return txn.Result{Reason: reason, Detail: st.detail, Distributed: st.isDistributed()}
	}

	// Last cancellation point: the outer locks are held but the inner
	// region has not been delegated, so aborting here is still clean.
	if reason, done := cc.Cancelled(ctx); done {
		st.abortLocked(n, txnID)
		return txn.Result{Reason: reason, Distributed: st.isDistributed()}
	}

	// Step 4: delegate, execute, and commit the inner region. Register
	// the replica-ack waiter first so acks cannot race registration. The
	// expected ack count is NOT sized from this coordinator's topology
	// view: mid-handoff the inner host streams to a warming replica this
	// view may not know about (or has just stopped streaming to one it
	// still lists), so the waiter registers pending and is resolved below
	// with the count the host actually sent (innerResponse.Streamed).
	ack := n.ExpectPendingAcks(txnID)

	ireq := &innerRequest{
		TxnID:    txnID,
		Coord:    n.ID(),
		Proc:     proc.Name,
		Args:     req.Args,
		InnerOps: dec.InnerOps,
		Reads:    st.reads,
	}
	iresp := e.execInner(innerNode, ireq)
	// A lock conflict inside the inner region means some other
	// transaction's outer region holds one of our hot records — a window
	// of at most a couple of round trips. The outer locks we already
	// hold are cold (uncontended), so tearing the transaction down and
	// re-acquiring them costs far more than briefly re-requesting the
	// inner region; as with the hot-wave re-request, the bound keeps
	// cross-transaction stalls finite and participants stay NO_WAIT.
	for attempt := 0; attempt < hotWaveRetries &&
		!iresp.OK && iresp.Reason == txn.AbortLockConflict; attempt++ {
		if !sleepJittered(ctx, hotWaveRetryBase<<attempt) {
			iresp = &innerResponse{Reason: txn.AbortCancelled}
			break
		}
		iresp = e.execInner(innerNode, ireq)
	}
	if !iresp.OK {
		n.CancelInnerAcks(txnID)
		n.ReleaseInnerWaiter(ack)
		st.abortLocked(n, txnID)
		return txn.Result{Reason: iresp.Reason, Detail: iresp.detail, Distributed: st.isDistributed()}
	}
	n.ResolveInnerAcks(txnID, iresp.Streamed)
	for id, v := range iresp.Reads {
		st.reads[id] = v
	}
	// The inner host reserved the transaction's commit timestamp at its
	// unilateral commit point (under the hot records' bucket locks, so
	// per-key timestamp order equals lock order) and stamped the inner
	// stream with it; every outer apply below carries the same stamp, and
	// the coordinator releases it only after the whole commit wave has
	// landed cluster-wide — the stable snapshot watermark never includes
	// a half-applied transaction. Zero when MVCC is off (Release(0) is a
	// no-op).
	ts := iresp.TS

	// The transaction is now committed (the inner host decided). The
	// steps below cannot abort it; a failure here is an engine invariant
	// violation, not a transaction abort.

	// Step 5: commit the outer region. Compute the deferred outer writes
	// — their mutators may consume values produced by the inner region —
	// and start streaming them to the outer partitions' replicas
	// immediately, so the replica round trip overlaps the wait for the
	// inner region's acks instead of following it.
	writes, err := e.materializeOuterWrites(proc, req.Args, dec.OuterOps, &st)
	if err != nil {
		// Mutators of outer write ops must be infallible once the inner
		// region has committed (all value constraints belong in reads'
		// Check hooks or inner mutators). Surface loudly.
		panic(fmt.Sprintf("core: outer mutate failed after inner commit (txn %d, proc %s): %v", txnID, proc.Name, err))
	}
	var repl *server.PendingReplication
	if e.batched {
		repl = n.ReplicateDoorbell(txnID, ts, writes)
	} else {
		repl = n.ReplicateAsync(txnID, ts, writes)
	}

	// Wait for the inner region's replicas to acknowledge (to us, the
	// coordinator — Figure 6) before completing the transaction.
	<-ack.Done()
	n.ReleaseInnerWaiter(ack)

	// Final step: join the outer replica acks, then one parallel commit
	// wave over every outer participant. The transaction's outcome and
	// read set are already final, so the wave runs as a detached tail
	// when it would otherwise block on the network — the client gets its
	// result one round trip earlier, while the protocol order (replica
	// acks before any lock release) is preserved inside the tail.
	targets := make([]server.CommitTarget, len(st.parts))
	for i, p := range st.parts {
		targets[i] = server.CommitTarget{Node: p.node, PID: p.pid}
	}
	finish := func() {
		if err := repl.Wait(); err != nil {
			panic(fmt.Sprintf("core: outer replication failed after inner commit: %v", err))
		}
		if err := n.CommitAll(txnID, ts, targets, writes, e.batched); err != nil {
			panic(fmt.Sprintf("core: outer commit failed after inner commit: %v", err))
		}
		// Every apply — inner stream, outer replicas, outer primaries —
		// has landed; snapshots may now advance past this timestamp.
		if c := n.Clock(); c != nil {
			c.Release(ts)
		}
		n.SampleCommit(st.readRIDs, st.writeRIDs)
	}
	if repl.Empty() && !st.hasRemoteParticipant(n.ID()) {
		finish() // purely local: no network to wait on
	} else {
		e.tails.Add(1)
		go func() {
			defer e.tails.Done()
			finish()
		}()
	}
	return txn.Result{Committed: true, Reads: st.reads, Distributed: st.isDistributed()}
}

// hotLastOrder re-orders the outer ops so cold records are locked first
// and hot records last, provided the result still satisfies every pk-dep
// (v-deps never restrict order, §3.2). If the reorder is illegal it
// returns the original ascending order.
func (e *Engine) hotLastOrder(g *depgraph.Graph, args txn.Args, outerOps []int) []int {
	hot := e.hotFunc()
	proc := g.Proc()
	anyHot := false
	for _, op := range outerOps {
		if hot(&proc.Ops[op], args) > 0 {
			anyHot = true
			break
		}
	}
	if !anyHot {
		return outerOps
	}
	reordered := make([]int, 0, len(outerOps))
	var hotOps []int
	for _, op := range outerOps {
		if hot(&proc.Ops[op], args) > 0 {
			hotOps = append(hotOps, op)
		} else {
			reordered = append(reordered, op)
		}
	}
	reordered = append(reordered, hotOps...)
	// Legality check over the full execution order implied for this
	// transaction: reordered outer ops must still respect pk-deps among
	// themselves (inner ops run after and are unaffected).
	pos := make([]int, len(proc.Ops))
	for i := range pos {
		pos[i] = -1 // not an outer op
	}
	for i, op := range reordered {
		pos[op] = i
	}
	for _, op := range reordered {
		for _, dep := range proc.Ops[op].PKDeps {
			if p := pos[dep]; p >= 0 && p > pos[op] {
				return outerOps // illegal: keep original order
			}
		}
	}
	return reordered
}

// participant is one outer-region node the coordinator has contacted.
// The list is tiny (a handful of nodes), so all lookups are linear scans
// over a slice rather than map operations — this is the per-transaction
// hot path.
type participant struct {
	node transport.NodeID
	pid  cluster.PartitionID
	// locked marks the node as known to hold locks for this txn (a batch
	// succeeded there, or failed in a way that may have left state
	// behind); only such nodes need an abort RPC.
	locked bool
}

type outerState struct {
	reads    txn.ReadSet
	parts    []participant
	innerPID cluster.PartitionID
	// detail carries failure context for internal/unreachable aborts
	// (which verb failed, at which node).
	detail string
	// sample gates access-set collection: the RID slices are only needed
	// when a statistics observer is installed.
	sample    bool
	readRIDs  []storage.RID
	writeRIDs []storage.RID
}

func (st *outerState) isDistributed() bool {
	for _, p := range st.parts {
		if p.pid != st.innerPID {
			return true
		}
	}
	return false
}

func (st *outerState) hasRemoteParticipant(self transport.NodeID) bool {
	for _, p := range st.parts {
		if p.node != self {
			return true
		}
	}
	return false
}

// addParticipant records a contacted node, deduplicating by node id.
func (st *outerState) addParticipant(node transport.NodeID, pid cluster.PartitionID) *participant {
	for i := range st.parts {
		if st.parts[i].node == node {
			return &st.parts[i]
		}
	}
	st.parts = append(st.parts, participant{node: node, pid: pid})
	return &st.parts[len(st.parts)-1]
}

// abortLocked sends the cleanup RPC to every node known to hold locks.
func (st *outerState) abortLocked(n *server.Node, txnID uint64) {
	for _, p := range st.parts {
		if p.locked {
			n.AbortAt(p.node, txnID)
		}
	}
}

// lockOuter acquires locks and performs reads for the outer ops in
// concurrent waves. Each wave takes every remaining op the hot-last
// partial order admits — an op is held back only while its key is still
// unresolvable (a pk-dep on an earlier outer read) or while it belongs to
// the trailing hot block and cold ops are still pending — groups the wave
// by participant node, and fans the per-node batches out as simultaneous
// lock-and-read calls. Writes are not materialized here — outer mutators
// may depend on inner reads.
func (e *Engine) lockOuter(ctx context.Context, proc *txn.Procedure, args txn.Args, txnID uint64, outerOps []int, st *outerState) (txn.AbortReason, bool) {
	hot := e.hotFunc()

	// hotLastOrder produces ...cold..., ...hot...; sequencing applies only
	// to that trailing all-hot block (when the reorder was illegal the
	// order is ascending and hot ops sit mid-list, carrying no barrier).
	barrier := len(outerOps)
	for barrier > 0 && hot(&proc.Ops[outerOps[barrier-1]], args) > 0 {
		barrier--
	}

	type pendingOp struct {
		op   int
		late bool // trailing hot block: locked only after all cold ops
	}
	pend := make([]pendingOp, len(outerOps))
	for i, op := range outerOps {
		pend[i] = pendingOp{op: op, late: i >= barrier}
	}

	for len(pend) > 0 {
		// Wave boundary: a cancelled coordinator stops acquiring and
		// lets the caller release what earlier waves locked.
		if reason, done := cc.Cancelled(ctx); done {
			return reason, false
		}
		anyEarly := false
		for _, p := range pend {
			if !p.late {
				anyEarly = true
				break
			}
		}
		var wave []int
		next := pend[:0]
		for _, p := range pend {
			if p.late && anyEarly {
				next = append(next, p)
				continue
			}
			if _, ok := proc.Ops[p.op].Key(args, st.reads); !ok {
				next = append(next, p)
				continue
			}
			wave = append(wave, p.op)
		}
		if len(wave) == 0 {
			// Remaining keys depend on reads that can never arrive.
			return txn.AbortInternal, false
		}
		lateWave := !anyEarly
		failed, reason, ok := e.lockWave(proc, args, txnID, wave, st)
		// Bounded re-request of a failed trailing hot wave: the cold
		// locks already held are uncontended by definition, so tearing
		// everything down on a NO_WAIT conflict only to re-acquire the
		// same cold locks wastes round trips and lengthens every span.
		// The coordinator instead re-issues just the failed hot batches a
		// few times (participants never block — this is still NO_WAIT at
		// the lock table; the bound keeps cross-transaction stalls from
		// turning into deadlock).
		if !ok && lateWave {
			for attempt := 0; attempt < hotWaveRetries &&
				!ok && reason == txn.AbortLockConflict && len(failed) > 0; attempt++ {
				if !sleepJittered(ctx, hotWaveRetryBase<<attempt) {
					return txn.AbortCancelled, false
				}
				failed, reason, ok = e.lockWave(proc, args, txnID, failed, st)
			}
		}
		if !ok {
			return reason, false
		}
		// Checks run once the whole wave's reads are in, in wave op
		// order, so a Check may consult any read the wave produced.
		for _, opID := range wave {
			op := &proc.Ops[opID]
			if op.Check != nil {
				if err := op.Check(st.reads[opID], args, st.reads); err != nil {
					return txn.AbortConstraint, false
				}
			}
		}
		pend = next
	}
	return txn.AbortNone, true
}

// Hot-wave re-request policy: a few exponentially spaced, jittered
// attempts whose total window (~600µs) covers a typical holder's
// remaining span (the couple of round trips between its hot-lock
// acquisition and its commit).
const (
	hotWaveRetries   = 5
	hotWaveRetryBase = 20 // microseconds; attempt k sleeps ~base<<k
)

// sleepJittered sleeps a uniformly jittered duration in [us, 2*us) µs,
// or until ctx is done — reporting false so re-request ladders stop
// immediately on cancellation instead of burning their remaining rungs.
func sleepJittered(ctx context.Context, us int64) bool {
	d := time.Duration(us+rand.Int63n(us)) * time.Microsecond
	if ctx.Done() == nil {
		time.Sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// lockWave groups one wave of ops by participant (node, lane) and issues
// every batch concurrently: remote batches are started first so their
// round trips overlap, the local batches (if any) execute while they are
// in flight, and all responses are gathered before reads are absorbed.
// Grouping by lane — not just node — keeps every batch single-lane, so
// the participant can run it wholesale on the owning lane's serial
// executor (preserving the batch's all-or-nothing rollback) and batches
// for independent lanes of one node are processed in parallel. On
// failure every outstanding call is still drained — its target already
// holds locks that only the caller's abort can release — and the ops of
// conflict-failed batches are returned so the caller may re-request
// them. Successful sibling batches keep their locks and reads either
// way. Checks are the caller's job (they must run only after the whole
// wave, including re-requests, has succeeded).
//
// With verb batching on, all of one destination node's lane batches ride
// a single doorbell — one round trip per node per wave, however many
// lanes the wave touches there. Each lane batch stays its own frame, so
// failure granularity (a frame rolls back only itself) and the
// per-(node, lane) retry bookkeeping are identical across transports.
func (e *Engine) lockWave(proc *txn.Procedure, args txn.Args, txnID uint64, wave []int, st *outerState) (failedOps []int, failReason txn.AbortReason, ok bool) {
	n := e.node
	dir := n.Directory()
	topo := dir.Topology()

	type nodeBatch struct {
		target  transport.NodeID
		lane    int
		entries []server.LockEntry
		ops     []int
		pending *server.PendingLock
		// Doorbell transport (verb batching on): the batch is frame
		// `frame` of the shared pending doorbell `bell`.
		bell  *server.PendingDoorbell
		frame int
	}
	// Group by participant (node, lane); the common case is a handful of
	// batches, so a linear scan over the batch list beats a map.
	var batches []*nodeBatch
	for _, opID := range wave {
		op := &proc.Ops[opID]
		key, keyOK := op.Key(args, st.reads)
		if !keyOK {
			return nil, txn.AbortInternal, false
		}
		rid := storage.RID{Table: op.Table, Key: key}
		pid := dir.Partition(rid)
		target := topo.Primary(pid)
		lane := dir.Lane(rid)
		var b *nodeBatch
		for _, cand := range batches {
			if cand.target == target && cand.lane == lane {
				b = cand
				break
			}
		}
		if b == nil {
			b = &nodeBatch{target: target, lane: lane}
			batches = append(batches, b)
		}
		b.entries = append(b.entries, server.LockEntry{
			OpID:      op.ID,
			Table:     op.Table,
			Key:       key,
			Mode:      op.Type.LockMode(),
			Read:      op.Type == txn.OpRead || op.Type == txn.OpUpdate,
			MustExist: op.Type != txn.OpInsert,
		})
		b.ops = append(b.ops, opID)
		st.addParticipant(target, pid)
	}

	// Canonical acquisition order within each batch: two transactions
	// whose batches list the same records in opposite orders would
	// otherwise each grab one and NO_WAIT-fail on the other, in lockstep
	// on every retry (an ABBA livelock the re-request ladder amplifies).
	// Sorting makes the first requester win every record *within a
	// batch*. Across same-node batches on different lanes the guarantee
	// is weaker — the lane executors run them concurrently, so two
	// transactions can still split a cross-lane record pair ABBA-style;
	// the jittered backoff (here and in the closed-loop runner) is what
	// desynchronizes those, the standard NO_WAIT answer. Response
	// semantics are order-independent (reads are keyed by op id), and a
	// wave is never mixed cold/hot, so hot-last ordering is unaffected.
	for _, b := range batches {
		sort.Sort(&batchSorter{entries: b.entries, ops: b.ops})
	}

	// Scatter: remote batches first, local last (it runs synchronously
	// while the remote round trips are in flight). Batched transport
	// rings one doorbell per remote node carrying that node's lane
	// batches as separate frames; scalar transport issues one RPC per
	// lane batch.
	var rung []*server.PendingDoorbell
	if e.batched {
		type bellRef struct {
			target transport.NodeID
			d      *server.Doorbell
		}
		var bells []bellRef
		for _, b := range batches {
			if b.target == n.ID() {
				continue
			}
			var d *server.Doorbell
			for _, br := range bells {
				if br.target == b.target {
					d = br.d
					break
				}
			}
			if d == nil {
				d = n.NewDoorbell(b.target)
				bells = append(bells, bellRef{target: b.target, d: d})
			}
			b.frame = d.PostLockRead(txnID, b.entries)
		}
		for _, br := range bells {
			pd := br.d.Ring()
			rung = append(rung, pd)
			for _, b := range batches {
				if b.target == br.target {
					b.bell = pd
				}
			}
		}
	} else {
		for _, b := range batches {
			if b.target != n.ID() {
				b.pending = n.LockReadAsync(b.target, txnID, b.entries)
			}
		}
	}
	for _, b := range batches {
		if b.target == n.ID() {
			b.pending = n.LockReadAsync(b.target, txnID, b.entries)
		}
	}

	// resolve yields a batch's lock response from whichever transport
	// carried it. PendingDoorbell.Wait is idempotent, so every lane batch
	// of one node reads its own frame from the shared completion. A frame
	// error (undecodable payload, non-batchable verb) is a transport-level
	// failure, exactly like a scalar call error — participant lock
	// failures always travel inside a LockResponse.
	resolve := func(b *nodeBatch) (*server.LockResponse, error) {
		if b.bell == nil {
			return b.pending.Wait()
		}
		results, err := b.bell.Wait()
		if err != nil {
			return nil, err
		}
		fr := results[b.frame]
		if ferr := b.bell.Err(fr); ferr != nil {
			return nil, ferr
		}
		return server.DecodeLockResponse(fr.Payload)
	}

	// Gather every response before judging the wave: a batch that failed
	// fast must not leave sibling calls (and the locks they acquired)
	// untracked behind an early return.
	failReason, failed := txn.AbortNone, false
	for _, b := range batches {
		resp, err := resolve(b)
		if err != nil {
			// Transport failure: assume the worst (locks may be held) —
			// the abort wave still runs there — and classify the reason:
			// injected faults are transient (retryable after the abort),
			// everything else is internal.
			st.addParticipant(b.target, 0).locked = true
			failReason, failed = server.TransportAbortReason(err), true
			st.detail = fmt.Sprintf("lock wave at node %d: %v", b.target, err)
			failedOps = nil
			continue
		}
		if !resp.OK {
			// A failed batch rolled itself back; the node holds locks
			// only if an earlier wave succeeded there (flag already set).
			if !failed {
				failReason, failed = resp.Reason, true
			}
			if failReason == txn.AbortLockConflict {
				failedOps = append(failedOps, b.ops...)
			}
			continue
		}
		st.addParticipant(b.target, 0).locked = true
		for i, opID := range b.ops {
			op := &proc.Ops[opID]
			if op.Type == txn.OpRead || op.Type == txn.OpUpdate {
				st.reads[opID] = resp.Reads[opID]
				if st.sample {
					st.readRIDs = append(st.readRIDs,
						storage.RID{Table: b.entries[i].Table, Key: b.entries[i].Key})
				}
			}
		}
	}
	// Every batch has been resolved: recycle the doorbell pendings (the
	// absorbed reads alias the response buffers, not the pendings).
	for _, pd := range rung {
		pd.Release()
	}
	if failed {
		return failedOps, failReason, false
	}
	return nil, txn.AbortNone, true
}

// batchSorter orders a batch's lock entries (and the parallel op-id
// slice) by (table, key).
type batchSorter struct {
	entries []server.LockEntry
	ops     []int
}

func (b *batchSorter) Len() int { return len(b.entries) }
func (b *batchSorter) Less(i, j int) bool {
	if b.entries[i].Table != b.entries[j].Table {
		return b.entries[i].Table < b.entries[j].Table
	}
	return b.entries[i].Key < b.entries[j].Key
}
func (b *batchSorter) Swap(i, j int) {
	b.entries[i], b.entries[j] = b.entries[j], b.entries[i]
	b.ops[i], b.ops[j] = b.ops[j], b.ops[i]
}

// materializeOuterWrites runs the deferred outer mutators, now that both
// outer and inner reads are available, and groups writes by partition.
func (e *Engine) materializeOuterWrites(proc *txn.Procedure, args txn.Args, outerOps []int, st *outerState) (map[cluster.PartitionID][]server.WriteOp, error) {
	dir := e.node.Directory()
	var writes map[cluster.PartitionID][]server.WriteOp
	for _, opID := range outerOps {
		op := &proc.Ops[opID]
		if !op.Type.IsWrite() {
			continue
		}
		// Every outer key resolved during lockOuter, so it resolves now.
		key, ok := op.Key(args, st.reads)
		if !ok {
			return nil, fmt.Errorf("core: outer write op %d has no resolvable key", opID)
		}
		rid := storage.RID{Table: op.Table, Key: key}
		var newVal []byte
		if op.Type != txn.OpDelete {
			var old []byte
			if op.Type == txn.OpUpdate {
				old = st.reads[opID]
			}
			nv, err := op.Mutate(old, args, st.reads)
			if err != nil {
				return nil, err
			}
			newVal = nv
		}
		pid := dir.Partition(rid)
		if writes == nil {
			writes = make(map[cluster.PartitionID][]server.WriteOp, 2)
		}
		writes[pid] = append(writes[pid], server.WriteOp{
			Table: op.Table, Key: rid.Key, Type: op.Type, Value: newVal,
		})
		if st.sample {
			st.writeRIDs = append(st.writeRIDs, rid)
		}
	}
	return writes, nil
}
