package core

import (
	"context"
	"sync"
	"testing"

	"github.com/chillerdb/chiller/internal/cluster"
	"github.com/chillerdb/chiller/internal/depgraph"
	"github.com/chillerdb/chiller/internal/server"
	"github.com/chillerdb/chiller/internal/storage"
	"github.com/chillerdb/chiller/internal/transport/simfab"
	"github.com/chillerdb/chiller/internal/txn"
)

func key(k storage.Key) txn.KeyFunc {
	return func(txn.Args, txn.ReadSet) (storage.Key, bool) { return k, true }
}

func setVal(v byte) txn.MutateFunc {
	return func([]byte, txn.Args, txn.ReadSet) ([]byte, error) { return []byte{v}, nil }
}

// single-node harness with hot key 7.
func newHarness(t *testing.T) (*Engine, *server.Node) {
	t.Helper()
	net := simfab.New(simfab.Config{})
	t.Cleanup(net.Close)
	topo := cluster.NewTopology(1, 1)
	dir := cluster.NewDirectory(topo, cluster.HashPartitioner{N: 1})
	st := storage.NewStore()
	tbl := st.CreateTable(1, 32)
	for k := storage.Key(0); k < 10; k++ {
		if err := tbl.Bucket(k).Insert(k, []byte{byte(k)}); err != nil {
			t.Fatal(err)
		}
	}
	dir.SetHot(storage.RID{Table: 1, Key: 7}, 0)
	node := server.New(net.Endpoint(0), st, txn.NewRegistry(), dir, 0)
	RegisterVerbs(node)
	return New(node), node
}

func TestHotLastOrder(t *testing.T) {
	e, node := newHarness(t)
	proc := &txn.Procedure{
		Name: "p",
		Ops: []txn.OpSpec{
			{ID: 0, Type: txn.OpUpdate, Table: 1, Key: key(7), Mutate: setVal(1)}, // hot
			{ID: 1, Type: txn.OpRead, Table: 1, Key: key(2)},
			{ID: 2, Type: txn.OpRead, Table: 1, Key: key(3)},
		},
	}
	if err := node.Registry().Register(proc); err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(proc)
	if err != nil {
		t.Fatal(err)
	}
	got := e.hotLastOrder(g, nil, []int{0, 1, 2})
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	// No hot ops: unchanged.
	got2 := e.hotLastOrder(g, nil, []int{1, 2})
	if len(got2) != 2 || got2[0] != 1 {
		t.Fatalf("cold order changed: %v", got2)
	}
}

func TestHotLastOrderRespectsPKDeps(t *testing.T) {
	e, node := newHarness(t)
	// Cold op 1's key depends on hot op 0's read: moving 0 after 1 is
	// illegal, so the original order must be kept.
	proc := &txn.Procedure{
		Name: "dep",
		Ops: []txn.OpSpec{
			{ID: 0, Type: txn.OpRead, Table: 1, Key: key(7)}, // hot
			{ID: 1, Type: txn.OpRead, Table: 1, Key: func(_ txn.Args, reads txn.ReadSet) (storage.Key, bool) {
				v, ok := reads[0]
				if !ok {
					return 0, false
				}
				return storage.Key(v[0] % 10), true
			}, PKDeps: []int{0}},
		},
	}
	if err := node.Registry().Register(proc); err != nil {
		t.Fatal(err)
	}
	g, err := depgraph.Build(proc)
	if err != nil {
		t.Fatal(err)
	}
	got := e.hotLastOrder(g, nil, []int{0, 1})
	if got[0] != 0 || got[1] != 1 {
		t.Fatalf("illegal reorder accepted: %v", got)
	}
}

func TestExecInnerLocalCommitsUnilaterally(t *testing.T) {
	_, node := newHarness(t)
	proc := &txn.Procedure{
		Name: "inner",
		Ops: []txn.OpSpec{
			{ID: 0, Type: txn.OpUpdate, Table: 1, Key: key(7), Mutate: setVal(42)},
		},
	}
	if err := node.Registry().Register(proc); err != nil {
		t.Fatal(err)
	}
	resp := ExecInnerLocal(node, 100, node.ID(), "inner", nil, []int{0}, nil, nil)
	if !resp.OK {
		t.Fatalf("inner aborted: %v", resp.Reason)
	}
	// Committed immediately: value visible, locks released.
	v, _, err := node.Store().Table(1).Bucket(7).Get(7)
	if err != nil || v[0] != 42 {
		t.Fatalf("v=%v err=%v", v, err)
	}
	if node.Store().Table(1).Bucket(7).Lock.Held() {
		t.Fatal("inner lock leaked")
	}
	if node.ActiveTxns() != 0 {
		t.Fatal("inner state leaked")
	}
}

func TestExecInnerLocalAbortsOnConflict(t *testing.T) {
	_, node := newHarness(t)
	proc := &txn.Procedure{
		Name: "conflict",
		Ops: []txn.OpSpec{
			{ID: 0, Type: txn.OpUpdate, Table: 1, Key: key(7), Mutate: setVal(1)},
		},
	}
	if err := node.Registry().Register(proc); err != nil {
		t.Fatal(err)
	}
	b := node.Store().Table(1).Bucket(7)
	if !b.Lock.TryLock(storage.LockExclusive) {
		t.Fatal("setup")
	}
	defer b.Lock.Unlock(storage.LockExclusive)
	resp := ExecInnerLocal(node, 101, node.ID(), "conflict", nil, []int{0}, nil, nil)
	if resp.OK || resp.Reason != txn.AbortLockConflict {
		t.Fatalf("resp = %+v", resp)
	}
	// Original value intact.
	v, _, _ := b.Get(7)
	if v[0] != 7 {
		t.Fatalf("aborted inner mutated value: %v", v)
	}
}

// The inner lock namespace must be disjoint from the outer one: a
// transaction holding an outer lock on this node must not have it
// released by its own inner region's commit.
func TestInnerLockNamespaceIsolation(t *testing.T) {
	_, node := newHarness(t)
	proc := &txn.Procedure{
		Name: "ns",
		Ops: []txn.OpSpec{
			{ID: 0, Type: txn.OpRead, Table: 1, Key: key(2)},                      // outer
			{ID: 1, Type: txn.OpUpdate, Table: 1, Key: key(7), Mutate: setVal(9)}, // inner
		},
	}
	if err := node.Registry().Register(proc); err != nil {
		t.Fatal(err)
	}
	const txnID = 200
	// Outer region locked under the raw txn id.
	lr := node.LockReadLocal(txnID, []server.LockEntry{
		{OpID: 0, Table: 1, Key: 2, Mode: storage.LockShared, Read: true, MustExist: true},
	})
	if !lr.OK {
		t.Fatal(lr.Reason)
	}
	// Inner region executes and commits under the same txn id.
	resp := ExecInnerLocal(node, txnID, node.ID(), "ns", nil, []int{1}, txn.ReadSet{0: []byte{2}}, nil)
	if !resp.OK {
		t.Fatalf("inner: %v", resp.Reason)
	}
	// The outer shared lock must still be held.
	if !node.Store().Table(1).Bucket(2).Lock.Held() {
		t.Fatal("inner commit released the outer lock")
	}
	node.AbortLocal(txnID)
}

func TestInnerRequestWireRoundTrip(t *testing.T) {
	req := &innerRequest{
		TxnID:    7,
		Coord:    3,
		Proc:     "p",
		Args:     txn.Args{1, 2},
		InnerOps: []int{0, 2},
		Reads:    txn.ReadSet{1: []byte("v")},
	}
	got, err := decodeInnerRequest(req.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.TxnID != 7 || got.Coord != 3 || got.Proc != "p" ||
		len(got.Args) != 2 || len(got.InnerOps) != 2 || string(got.Reads[1]) != "v" {
		t.Fatalf("got %+v", got)
	}
	resp := &innerResponse{OK: true, Reads: txn.ReadSet{0: []byte("r")}}
	rgot, err := decodeInnerResponse(resp.encode())
	if err != nil || !rgot.OK || string(rgot.Reads[0]) != "r" {
		t.Fatalf("resp %+v err=%v", rgot, err)
	}
}

func TestRunFallsBackForColdTxn(t *testing.T) {
	e, node := newHarness(t)
	proc := &txn.Procedure{
		Name: "cold",
		Ops: []txn.OpSpec{
			{ID: 0, Type: txn.OpUpdate, Table: 1, Key: key(3), Mutate: setVal(5)},
		},
	}
	if err := node.Registry().Register(proc); err != nil {
		t.Fatal(err)
	}
	dec, err := e.Decide(&txn.Request{Proc: "cold"})
	if err != nil {
		t.Fatal(err)
	}
	if dec.TwoRegion {
		t.Fatal("cold txn classified two-region")
	}
	res := e.Run(context.Background(), &txn.Request{Proc: "cold"})
	if !res.Committed {
		t.Fatalf("cold txn aborted: %v", res.Reason)
	}
	v, _, _ := node.Store().Table(1).Bucket(3).Get(3)
	if v[0] != 5 {
		t.Fatal("cold write lost")
	}
}

func TestRunUnknownProc(t *testing.T) {
	e, _ := newHarness(t)
	res := e.Run(context.Background(), &txn.Request{Proc: "ghost"})
	if res.Committed || res.Reason != txn.AbortInternal {
		t.Fatalf("res = %+v", res)
	}
	if _, err := e.Decide(&txn.Request{Proc: "ghost"}); err == nil {
		t.Fatal("Decide accepted unknown proc")
	}
}

// multiHarness builds a 3-node cluster with table 1 range-partitioned:
// keys [0,100) on node 0, [100,200) on node 1, [200,300) on node 2.
func multiHarness(t *testing.T) ([]*Engine, []*server.Node, *simfab.Network) {
	t.Helper()
	net := simfab.New(simfab.Config{})
	t.Cleanup(net.Close)
	topo := cluster.NewTopology(3, 1)
	dir := cluster.NewDirectory(topo, cluster.RangePartitioner{
		N: 3, MaxKey: map[storage.TableID]storage.Key{1: 300},
	})
	reg := txn.NewRegistry()
	nodes := make([]*server.Node, 3)
	engines := make([]*Engine, 3)
	for i := 0; i < 3; i++ {
		st := storage.NewStore()
		tbl := st.CreateTable(1, 64)
		for k := storage.Key(i * 100); k < storage.Key(i*100+100); k += 10 {
			if err := tbl.Bucket(k).Insert(k, []byte{byte(k)}); err != nil {
				t.Fatal(err)
			}
		}
		nodes[i] = server.New(net.Endpoint(simfab.NodeID(i)), st, reg, dir, cluster.PartitionID(i))
		RegisterVerbs(nodes[i])
		engines[i] = New(nodes[i])
	}
	return engines, nodes, net
}

// drainAll joins every engine's background commit tails.
func drainAll(engines []*Engine) {
	for _, e := range engines {
		e.Drain()
	}
}

// lockRecorder interposes a node's lock-and-read verb, recording each
// batch's keys while delegating to the real handler.
func lockRecorder(t *testing.T, n *server.Node) *[][]storage.Key {
	t.Helper()
	var mu sync.Mutex
	batches := &[][]storage.Key{}
	n.Endpoint().Handle(server.VerbLockRead, func(_ simfab.NodeID, req []byte) ([]byte, error) {
		txnID, entries, err := server.DecodeLockRequest(req)
		if err != nil {
			return nil, err
		}
		keys := make([]storage.Key, len(entries))
		for i, e := range entries {
			keys[i] = e.Key
		}
		mu.Lock()
		*batches = append(*batches, keys)
		mu.Unlock()
		return n.LockReadLocal(txnID, entries).Encode(), nil
	})
	return batches
}

// The outer region's ops must reach each participant as one batched
// lock-and-read call per wave (not one round trip per op), fanned out to
// all participants concurrently in the same wave.
func TestLockOuterBatchGrouping(t *testing.T) {
	engines, nodes, _ := multiHarness(t)
	engine := engines[0]
	b1 := lockRecorder(t, nodes[1])
	b2 := lockRecorder(t, nodes[2])

	// Hot record on node 0 (the coordinator) forms the inner region;
	// two cold ops on node 1 and two on node 2 form the outer region.
	nodes[0].Directory().SetHot(storage.RID{Table: 1, Key: 10}, 0)
	proc := &txn.Procedure{
		Name: "grouped",
		Ops: []txn.OpSpec{
			{ID: 0, Type: txn.OpRead, Table: 1, Key: key(110)},
			{ID: 1, Type: txn.OpRead, Table: 1, Key: key(210)},
			{ID: 2, Type: txn.OpRead, Table: 1, Key: key(120)},
			{ID: 3, Type: txn.OpRead, Table: 1, Key: key(220)},
			{ID: 4, Type: txn.OpUpdate, Table: 1, Key: key(10), Mutate: setVal(1)}, // hot, inner
		},
	}
	if err := nodes[0].Registry().Register(proc); err != nil {
		t.Fatal(err)
	}
	res := engine.Run(context.Background(), &txn.Request{Proc: "grouped"})
	if !res.Committed {
		t.Fatalf("txn aborted: %v", res.Reason)
	}
	drainAll(engines)
	for name, got := range map[string][][]storage.Key{"node1": *b1, "node2": *b2} {
		if len(got) != 1 {
			t.Fatalf("%s received %d lock calls, want 1 batched call (%v)", name, len(got), got)
		}
		if len(got[0]) != 2 {
			t.Fatalf("%s batch = %v, want 2 entries", name, got[0])
		}
	}
	if string(res.Reads[0]) != string([]byte{110}) || string(res.Reads[3]) != string([]byte{220}) {
		t.Fatalf("reads = %v", res.Reads)
	}
}

// A hot record that could not join the inner region is locked strictly
// after every cold outer op (hot-last), in its own later wave.
func TestLockOuterHotWaveOrdering(t *testing.T) {
	engines, nodes, _ := multiHarness(t)
	engine := engines[0]
	b1 := lockRecorder(t, nodes[1])

	// Two hot records on different partitions: node 2's (two candidates)
	// wins the inner region, node 1's stays outer-hot.
	dir := nodes[0].Directory()
	dir.SetHot(storage.RID{Table: 1, Key: 110}, 1)
	dir.SetHot(storage.RID{Table: 1, Key: 210}, 2)
	dir.SetHot(storage.RID{Table: 1, Key: 220}, 2)
	proc := &txn.Procedure{
		Name: "hotlast",
		Ops: []txn.OpSpec{
			{ID: 0, Type: txn.OpUpdate, Table: 1, Key: key(110), Mutate: setVal(2)}, // hot, outer
			{ID: 1, Type: txn.OpRead, Table: 1, Key: key(120)},                      // cold, same node
			{ID: 2, Type: txn.OpUpdate, Table: 1, Key: key(210), Mutate: setVal(3)}, // hot, inner
			{ID: 3, Type: txn.OpUpdate, Table: 1, Key: key(220), Mutate: setVal(4)}, // hot, inner
		},
	}
	if err := nodes[0].Registry().Register(proc); err != nil {
		t.Fatal(err)
	}
	res := engine.Run(context.Background(), &txn.Request{Proc: "hotlast"})
	if !res.Committed {
		t.Fatalf("txn aborted: %v", res.Reason)
	}
	drainAll(engines)
	got := *b1
	if len(got) != 2 {
		t.Fatalf("node1 received %d lock calls, want 2 (cold wave, then hot wave): %v", len(got), got)
	}
	if len(got[0]) != 1 || got[0][0] != 120 {
		t.Fatalf("first wave = %v, want the cold op (key 120)", got[0])
	}
	if len(got[1]) != 1 || got[1][0] != 110 {
		t.Fatalf("second wave = %v, want the hot op (key 110)", got[1])
	}
	v, _, _ := nodes[1].Store().Table(1).Bucket(110).Get(110)
	if v[0] != 2 {
		t.Fatalf("outer-hot write lost: %v", v)
	}
}
