package chiller

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/chillerdb/chiller/internal/cc"
	"github.com/chillerdb/chiller/internal/cc/occ"
	"github.com/chillerdb/chiller/internal/cc/twopl"
	"github.com/chillerdb/chiller/internal/cluster"
	"github.com/chillerdb/chiller/internal/core"
	"github.com/chillerdb/chiller/internal/history"
	"github.com/chillerdb/chiller/internal/partition/chillerpart"
	"github.com/chillerdb/chiller/internal/server"
	"github.com/chillerdb/chiller/internal/stats"
	"github.com/chillerdb/chiller/internal/storage"
	"github.com/chillerdb/chiller/internal/tcpnet"
	"github.com/chillerdb/chiller/internal/transport"
	"github.com/chillerdb/chiller/internal/transport/simfab"
	"github.com/chillerdb/chiller/internal/txn"
	"github.com/chillerdb/chiller/internal/wal"
)

// DB is a Chiller deployment handle: by default an embedded simulated
// multi-partition cluster with one coordinator engine per node, or —
// with WithTransport(TransportTCP) — a coordinator-only client joined
// to a cluster of chiller-node processes, executing registered stored
// procedures either way. It is the one supported way to embed the
// system; the internal packages carry no compatibility promise.
//
// A DB is safe for concurrent use. Execute calls may run from any number
// of goroutines; each is an independent coordinator.
type DB struct {
	cfg      config
	net      *simfab.Network // simulated fabric; nil over TransportTCP
	fab      *tcpnet.Fabric  // TCP client fabric; nil over TransportSim
	topo     *cluster.Topology
	dir      *cluster.Directory
	registry *txn.Registry
	// nodes and engines are copy-on-write: AddNode swaps in a longer
	// slice while Execute and the tooling paths read the old one
	// lock-free, so cluster growth never stalls in-flight transactions.
	nodes   atomic.Pointer[[]*server.Node]
	engines atomic.Pointer[[]cc.Engine]
	sampler *stats.Sampler
	clock   *storage.Clock // MVCC commit clock; nil without WithMVCC
	wals    []*wal.Log     // per-node write-ahead logs; empty without WithDurability
	// recovered reports that Open found durable state under the
	// WithDurability dir and replayed it into the stores; Load then
	// yields to recovered values instead of overwriting them.
	recovered bool

	next   atomic.Uint64 // round-robin coordinator choice
	closed atomic.Bool
	mu     sync.Mutex // serializes Close, Repartition, and membership changes

	stopBg chan struct{}  // closed by Close to stop background loops
	bg     sync.WaitGroup // MVCC GC + auto-repartition goroutines
}

// nodeList returns the current node slice. The slice is immutable once
// published; callers may iterate it without holding db.mu.
func (db *DB) nodeList() []*server.Node { return *db.nodes.Load() }

// engineList returns the current engine slice (same publication rules
// as nodeList).
func (db *DB) engineList() []cc.Engine { return *db.engines.Load() }

// Open assembles a cluster and returns the embedded database handle.
// With no options it is a single-partition, single-replica deployment of
// the Chiller engine with a hash partitioner and 5µs simulated one-way
// latency.
//
//	db, err := chiller.Open(
//		chiller.WithPartitions(4),
//		chiller.WithReplication(2),
//		chiller.WithEngine(chiller.EngineChiller),
//	)
//
// With WithTransport(TransportTCP) the handle instead joins a running
// cluster of chiller-node processes as a coordinator-only client:
//
//	db, err := chiller.Open(
//		chiller.WithTransport(chiller.TransportTCP),
//		chiller.WithPeers("127.0.0.1:7101", "127.0.0.1:7102", "127.0.0.1:7103"),
//		chiller.WithReplication(2), // must match the nodes
//	)
//
// The caller owns the handle and must Close it; Close drains in-flight
// background commit work before tearing the fabric down, so a returned
// Close means the cluster is quiesced.
func Open(opts ...Option) (*DB, error) {
	cfg := config{
		partitions:  1,
		replication: 1,
		latency:     5 * time.Microsecond,
		engine:      EngineChiller,
	}
	for _, opt := range opts {
		if err := opt(&cfg); err != nil {
			return nil, err
		}
	}
	if cfg.lanes <= 0 {
		cfg.lanes = cluster.DefaultLanes()
	}
	if cfg.transport == "" {
		cfg.transport = TransportSim
	}
	switch cfg.transport {
	case TransportSim:
		if len(cfg.peers) > 0 {
			return nil, fmt.Errorf("chiller: WithPeers requires WithTransport(TransportTCP): %w", ErrBadConfig)
		}
		if cfg.listenAddr != "" {
			return nil, fmt.Errorf("chiller: WithListenAddr requires WithTransport(TransportTCP): %w", ErrBadConfig)
		}
	case TransportTCP:
		if len(cfg.peers) == 0 {
			return nil, fmt.Errorf("chiller: WithTransport(TransportTCP) requires WithPeers: %w", ErrBadConfig)
		}
		if len(cfg.simOnly) > 0 {
			return nil, fmt.Errorf("chiller: %s is simulation-only and cannot combine with WithTransport(TransportTCP): %w",
				cfg.simOnly[0], ErrBadConfig)
		}
		// One partition per node process; the client owns none of them.
		cfg.partitions = len(cfg.peers)
	}
	switch p := cfg.partitioner.(type) {
	case nil:
		cfg.partitioner = cluster.HashPartitioner{N: cfg.partitions}
	case rangePartitioner:
		p.n = cfg.partitions
		cfg.partitioner = p
	}

	if cfg.fsync != (FsyncPolicy{}) && cfg.walDir == "" {
		return nil, fmt.Errorf("chiller: WithFsyncPolicy requires WithDurability: %w", ErrBadConfig)
	}
	if cfg.autoRepartition > 0 && cfg.sampleRate <= 0 {
		return nil, fmt.Errorf("chiller: WithAutoRepartition requires WithSampling: %w", ErrBadConfig)
	}

	if cfg.transport == TransportTCP {
		return openTCP(cfg)
	}

	net := simfab.New(simfab.Config{
		Latency: cfg.latency,
		Jitter:  cfg.jitter,
		Seed:    cfg.seed,
	})
	topo := cluster.NewTopology(cfg.partitions, cfg.replication)
	dir := cluster.NewDirectory(topo, cfg.partitioner)
	dir.SetLanes(cfg.lanes) // before node construction: nodes size their lane executors from the directory

	db := &DB{
		cfg:      cfg,
		net:      net,
		topo:     topo,
		dir:      dir,
		registry: txn.NewRegistry(),
	}
	if cfg.sampleRate > 0 {
		db.sampler = stats.NewSampler(cfg.sampleRate, cfg.seed+1)
	}
	if cfg.mvcc {
		// One commit clock shared by every node: timestamps are reserved
		// at commit points and released once a transaction's applies have
		// landed cluster-wide, so the clock's stable watermark is a
		// consistent snapshot boundary for the whole deployment.
		db.clock = storage.NewClock()
	}
	var nodes []*server.Node
	for p := 0; p < cfg.partitions; p++ {
		node := server.New(net.Endpoint(simfab.NodeID(p)), storage.NewStore(),
			db.registry, dir, cluster.PartitionID(p))
		if db.sampler != nil {
			node.SetSampler(db.sampler)
		}
		if db.clock != nil {
			// Before WAL recovery: SetClock flips the store to versioned
			// records, so replay rebuilds version chains at their logged
			// commit timestamps.
			node.SetClock(db.clock)
		}
		if cfg.walDir != "" {
			// Recover-then-attach before the node registers verbs: any
			// state a previous incarnation logged is back in the store
			// before the first message can arrive.
			l, rec, err := wal.Recover(filepath.Join(cfg.walDir, fmt.Sprintf("node-%d", p)), cfg.lanes, wal.Policy{
				FlushInterval: cfg.fsync.FlushInterval,
				FlushBytes:    cfg.fsync.FlushBytes,
				NoSync:        cfg.fsync.NoSync,
				SnapshotBytes: cfg.fsync.SnapshotBytes,
			})
			if err == nil && !rec.Empty() {
				db.recovered = true
				var maxTS uint64
				if maxTS, err = server.RecoverStore(node.Store(), rec); err != nil {
					l.Close()
				} else if db.clock != nil {
					db.clock.AdvanceTo(maxTS)
				}
			}
			if err != nil {
				for _, l := range db.wals {
					l.Close()
				}
				net.Close()
				return nil, fmt.Errorf("chiller: durability for node %d: %w", p, err)
			}
			db.wals = append(db.wals, l)
			node.SetWAL(l)
		}
		occ.RegisterVerbs(node)
		core.RegisterVerbs(node)
		nodes = append(nodes, node)
	}
	var engines []cc.Engine
	for _, n := range nodes {
		engines = append(engines, db.buildEngine(n))
	}
	db.nodes.Store(&nodes)
	db.engines.Store(&engines)
	db.stopBg = make(chan struct{})
	if cfg.mvcc {
		db.bg.Add(1)
		go db.mvccGCLoop()
	}
	if cfg.autoRepartition > 0 {
		db.bg.Add(1)
		go db.autoRepartitionLoop()
	}
	return db, nil
}

// buildEngine constructs the configured concurrency-control engine for a
// node, wrapped in the history recorder when one was requested.
func (db *DB) buildEngine(n *server.Node) cc.Engine {
	var eng cc.Engine
	switch db.cfg.engine {
	case Engine2PL:
		eng = twopl.New(n)
	case EngineOCC:
		eng = occ.New(n)
	default:
		chillerEng := core.New(n)
		chillerEng.SetVerbBatching(db.cfg.verbBatching)
		eng = chillerEng
	}
	if db.cfg.recorder != nil {
		// WithHistoryRecorder: record every Run outcome at the
		// engine boundary (reads observed, writes installed).
		eng = history.Engine(eng, db.registry, db.cfg.recorder)
	}
	return eng
}

// openTCP joins a chiller-node cluster as a coordinator-only client:
// the DB takes node ID len(peers) (outside the data topology) and a
// partition no node primaries, so every locality check in the
// coordination paths resolves to a remote verb over the socket. The
// client's topology, directory, and registry must mirror the nodes' —
// Register the same procedures the nodes registered before Execute.
func openTCP(cfg config) (*DB, error) {
	fab, err := tcpnet.New(tcpnet.Config{
		ID:         transport.NodeID(len(cfg.peers)),
		ListenAddr: cfg.listenAddr,
	})
	if err != nil {
		return nil, fmt.Errorf("chiller: tcp client fabric: %w", err)
	}
	addrs := make(map[transport.NodeID]string, len(cfg.peers))
	for i, addr := range cfg.peers {
		addrs[transport.NodeID(i)] = addr
	}
	fab.SetPeers(addrs)

	topo := cluster.NewTopology(cfg.partitions, cfg.replication)
	dir := cluster.NewDirectory(topo, cfg.partitioner)
	dir.SetLanes(cfg.lanes)

	db := &DB{
		cfg:      cfg,
		fab:      fab,
		topo:     topo,
		dir:      dir,
		registry: txn.NewRegistry(),
	}
	node := server.New(fab, storage.NewStore(), db.registry, dir, cluster.PartitionID(-1))
	occ.RegisterVerbs(node)
	core.RegisterVerbs(node)
	nodes := []*server.Node{node}
	engines := []cc.Engine{db.buildEngine(node)}
	db.nodes.Store(&nodes)
	db.engines.Store(&engines)
	db.stopBg = make(chan struct{})
	return db, nil
}

// unsupported returns the typed rejection for store-touching methods on
// a TCP-client DB (nil on the embedded simulated deployment, where the
// stores are in-process).
func (db *DB) unsupported(op string) error {
	if db.fab != nil {
		return fmt.Errorf("chiller: %s over tcp: %w", op, ErrUnsupported)
	}
	return nil
}

// Close quiesces and tears the cluster down: every engine's outstanding
// background commit work is drained first (so no async commit tail hits
// a closed fabric and no lock outlives the handle), then the fabric and
// the nodes' lane executors stop. Close is idempotent; after it every
// other method returns ErrClosed.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	// Stop the background loops before taking db.mu: the auto-repartition
	// loop acquires db.mu inside Repartition, so waiting for it while
	// holding the lock would deadlock.
	close(db.stopBg)
	db.bg.Wait()
	db.mu.Lock()
	defer db.mu.Unlock()
	db.drain()
	if db.net != nil {
		db.net.Close()
	}
	if db.fab != nil {
		db.fab.Close()
	}
	for _, n := range db.nodeList() {
		n.Close()
	}
	// WALs close last: the nodes' lane executors have drained, so every
	// logged record is flushed before the files are released.
	var err error
	for _, l := range db.wals {
		if cerr := l.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// Partitions returns the partition count the DB was opened with.
func (db *DB) Partitions() int { return db.cfg.partitions }

// CreateTable creates a table on every node with the given bucket count
// (buckets are the unit of locking; size generously for hot tables).
// Create all tables before loading or executing.
func (db *DB) CreateTable(t Table, buckets int) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.unsupported("CreateTable"); err != nil {
		return err
	}
	for _, n := range db.nodeList() {
		n.Store().CreateTable(storage.TableID(t), buckets)
	}
	return nil
}

// Register validates and registers a stored procedure on every node.
func (db *DB) Register(p *Proc) error {
	if db.closed.Load() {
		return ErrClosed
	}
	proc, err := p.build()
	if err != nil {
		return err
	}
	return db.registry.Register(proc)
}

// Load inserts a record directly, bypassing transaction execution: it
// routes by the current directory state and writes the primary and every
// replica copy. Use it for initial data loading, before traffic.
//
// On a DB recovered from a WithDurability dir, Load yields to recovery:
// a key the replayed log already holds keeps its recovered value (which
// reflects committed transactions, strictly newer than initial data),
// so restart code can rerun its loading phase unconditionally.
func (db *DB) Load(t Table, key Key, value []byte) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.unsupported("Load"); err != nil {
		return err
	}
	rid := storage.RID{Table: storage.TableID(t), Key: storage.Key(key)}
	pid := db.dir.Partition(rid)
	// No defensive copy needed: the store copies the value into fresh
	// immutable storage on every Insert, so the caller's buffer is never
	// aliased and may be reused immediately.
	nodes := db.nodeList()
	targets := append([]simfab.NodeID{db.topo.Primary(pid)}, db.topo.Replicas(pid)...)
	for _, target := range targets {
		tbl := nodes[int(target)].Store().Table(rid.Table)
		if tbl == nil {
			return fmt.Errorf("chiller: load into missing table %d (CreateTable first)", t)
		}
		if db.recovered {
			if _, _, err := tbl.Bucket(rid.Key).Get(rid.Key); err == nil {
				continue
			}
		}
		if err := tbl.Bucket(rid.Key).Insert(rid.Key, value); err != nil {
			return fmt.Errorf("chiller: load %d/%d: %w", t, key, err)
		}
	}
	return nil
}

// drain joins every engine's outstanding background commit work (async
// commit tails), after which the cluster's lock state is stable.
func (db *DB) drain() {
	for _, e := range db.engineList() {
		if d, ok := e.(cc.Drainer); ok {
			d.Drain()
		}
	}
}

// Get reads a record's current value from its primary store, outside
// any transaction — a point-in-time peek for tooling and tests, not a
// consistent read (use a Read op in a procedure for that). Background
// commit tails of already-committed transactions are drained first, so
// a Get after a committed Execute observes that transaction's writes.
func (db *DB) Get(t Table, key Key) ([]byte, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if err := db.unsupported("Get"); err != nil {
		return nil, err
	}
	db.drain()
	rid := storage.RID{Table: storage.TableID(t), Key: storage.Key(key)}
	tbl := db.nodeList()[int(db.topo.Primary(db.dir.Partition(rid)))].Store().Table(rid.Table)
	if tbl == nil {
		return nil, fmt.Errorf("chiller: table %d: %w", t, ErrNotFound)
	}
	v, _, err := tbl.Bucket(rid.Key).Get(rid.Key)
	if err != nil {
		return nil, fmt.Errorf("chiller: get %d/%d: %w", t, key, ErrNotFound)
	}
	// Copy out: the store's value buffers are shared with concurrent
	// readers and replicas; handing one to the caller would let writes
	// through the returned slice corrupt the database.
	return append([]byte(nil), v...), nil
}

// Result reports a committed transaction's outcome.
type Result struct {
	// Distributed reports whether the transaction touched more than one
	// partition.
	Distributed bool

	reads txn.ReadSet
}

// Read returns a copy of the value read by the operation with the
// given ID (Op.ID), ok=false if the op read nothing.
func (r Result) Read(opID int) (val []byte, ok bool) {
	v, ok := r.reads[opID]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// Execute runs one transaction of the named registered procedure to a
// single commit-or-abort outcome; it does not retry (see
// ExecuteWithRetry). On commit the error is nil. On abort the error
// wraps the typed taxonomy — errors.Is(err, ErrAborted) is true, along
// with the specific reason sentinel (ErrLockConflict, ErrConstraint,
// ErrNotFound, ...).
//
// ctx cancellation or deadline expiry aborts the transaction cleanly at
// the next protocol boundary before its commit point: all locks it
// acquired are released and the error wraps ctx.Err(). A ctx that is
// already done returns before any network verb is issued. Once a
// transaction passes its commit point it completes regardless of ctx.
func (db *DB) Execute(ctx context.Context, proc string, args ...int64) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("chiller: %s not started: %w", proc, err)
	}
	if db.closed.Load() {
		return Result{}, ErrClosed
	}
	if db.registry.Lookup(proc) == nil {
		return Result{}, fmt.Errorf("chiller: %q: %w", proc, ErrUnknownProc)
	}
	engines := db.engineList()
	engine := engines[int(db.next.Add(1)%uint64(len(engines)))]
	res := engine.Run(ctx, &txn.Request{Proc: proc, Args: txn.Args(args)})
	if !res.Committed {
		return Result{Distributed: res.Distributed}, abortError(ctx, proc, res)
	}
	return Result{Distributed: res.Distributed, reads: res.Reads}, nil
}

// MarkHot adds the record to the hot lookup table at its current home
// partition, enabling the two-region execution path for transactions
// touching it. Equivalent to what Repartition derives from sampled
// statistics, for workloads that know their celebrities up front.
func (db *DB) MarkHot(t Table, key Key) error {
	return db.MarkHotWeight(t, key, 1)
}

// MarkHotWeight is MarkHot with an explicit contention weight: when a
// transaction touches several hot records on different partitions, the
// engine places its inner region on the partition carrying the most
// contention mass.
func (db *DB) MarkHotWeight(t Table, key Key, weight float64) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.unsupported("MarkHot"); err != nil {
		return err
	}
	if weight <= 0 {
		return fmt.Errorf("chiller: hot weight %v must be positive", weight)
	}
	rid := storage.RID{Table: storage.TableID(t), Key: storage.Key(key)}
	db.dir.SetHotWeight(rid, db.dir.Partition(rid), weight)
	return nil
}

// RepartitionReport summarizes one Repartition pass.
type RepartitionReport struct {
	// SampledTxns is the number of transaction samples consumed.
	SampledTxns int
	// HotRecords is the number of records whose contention likelihood
	// crossed the threshold and earned a lookup-table entry.
	HotRecords int
	// Moved is the number of hot records physically relocated to a new
	// home partition.
	Moved int
	// LookupTableSize is the routing-metadata size after the pass.
	LookupTableSize int
}

// Repartition runs the contention-centric partitioner (§4.2-4.4 of the
// paper) over the access samples collected since the last pass: records
// whose contention likelihood crosses the threshold are placed — and
// physically moved — so transactions co-locate with their contended
// data, and the hot lookup table is rewritten. Requires WithSampling.
//
// Call it from a maintenance window: in-flight transactions racing a
// repartition pass may abort against moving records. ctx is consulted
// between phases; a cancelled pass leaves the previous layout intact.
func (db *DB) Repartition(ctx context.Context) (RepartitionReport, error) {
	if db.closed.Load() {
		return RepartitionReport{}, ErrClosed
	}
	if err := db.unsupported("Repartition"); err != nil {
		return RepartitionReport{}, err
	}
	if db.sampler == nil {
		return RepartitionReport{}, fmt.Errorf("chiller: repartition needs sampling: Open with WithSampling")
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return RepartitionReport{}, fmt.Errorf("chiller: repartition: %w", err)
	}

	samples := db.sampler.Drain()
	if len(samples) == 0 {
		return RepartitionReport{}, fmt.Errorf("chiller: repartition: no samples collected yet")
	}
	agg := stats.NewAggregate()
	agg.Add(samples)
	// Lock windows: treat the sampling frame as ~5 samples per window,
	// the same heuristic the benchmark harness uses.
	agg.Finalize(db.cfg.sampleRate, float64(len(samples))/5)

	res, err := chillerpart.Partition(agg, chillerpart.Config{
		K:     db.cfg.partitions,
		Lanes: db.cfg.lanes,
		Seed:  db.cfg.seed,
	})
	if err != nil {
		return RepartitionReport{}, fmt.Errorf("chiller: repartition: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return RepartitionReport{}, fmt.Errorf("chiller: repartition: %w", err)
	}

	// Relocate hot records whose new home differs from their current
	// partition. The pass must not lose writes racing it: for each
	// moving record the old primary bucket's lock word is held
	// exclusively across the whole move, so concurrent writers hit a
	// NO_WAIT conflict and retry instead of committing into the copy
	// window; the value is re-read under that lock, the copies land at
	// the new home BEFORE the layout flips routing to it, and the old
	// copies are deleted only after the flip. Load-time replicas of
	// unmoved records are untouched.
	type move struct {
		rid      storage.RID
		val      []byte
		from, to cluster.PartitionID
	}
	nodes := db.nodeList()
	locked := map[*storage.Bucket]bool{}
	unlockAll := func() {
		for b := range locked {
			b.Lock.Unlock(storage.LockExclusive)
		}
	}
	var moves []move
	for rid, newPID := range res.Layout.Hot {
		oldPID := db.dir.Partition(rid)
		if oldPID == newPID {
			continue
		}
		tbl := nodes[int(db.topo.Primary(oldPID))].Store().Table(rid.Table)
		if tbl == nil {
			continue
		}
		b := tbl.Bucket(rid.Key)
		// Two hot records can share a bucket; lock each bucket once.
		for !locked[b] {
			if !b.Lock.TryLock(storage.LockExclusive) {
				if err := ctx.Err(); err != nil {
					unlockAll()
					return RepartitionReport{}, fmt.Errorf("chiller: repartition: %w", err)
				}
				time.Sleep(2 * time.Microsecond)
				continue
			}
			locked[b] = true
		}
		v, _, err := b.Get(rid.Key)
		if err != nil {
			continue // sampled but since deleted
		}
		moves = append(moves, move{rid: rid, val: v, from: oldPID, to: newPID})
	}
	// Copies first: a transaction routed by the new layout the instant
	// it installs must find its record already at the new home.
	holds := make([]map[simfab.NodeID]bool, len(moves))
	for i, m := range moves {
		holds[i] = make(map[simfab.NodeID]bool)
		for _, target := range append([]simfab.NodeID{db.topo.Primary(m.to)}, db.topo.Replicas(m.to)...) {
			if tbl := nodes[int(target)].Store().Table(m.rid.Table); tbl != nil {
				tbl.Bucket(m.rid.Key).Upsert(m.rid.Key, m.val)
				holds[i][target] = true
			}
		}
	}
	res.Layout.Install(db.dir)
	for i, m := range moves {
		// With few nodes the old and new homes may share physical
		// machines (a node primaries one partition and replicates
		// another); delete only from nodes that hold no copy under the
		// new placement.
		for _, target := range append([]simfab.NodeID{db.topo.Primary(m.from)}, db.topo.Replicas(m.from)...) {
			if holds[i][target] {
				continue
			}
			if tbl := nodes[int(target)].Store().Table(m.rid.Table); tbl != nil {
				_ = tbl.Bucket(m.rid.Key).Delete(m.rid.Key)
			}
		}
	}
	unlockAll()

	return RepartitionReport{
		SampledTxns:     len(samples),
		HotRecords:      len(res.Layout.Hot),
		Moved:           len(moves),
		LookupTableSize: db.dir.LookupTableSize(),
	}, nil
}

// MVCC garbage collection cadence: the watermark trails the clock's
// stable point by gcRetention timestamps so in-flight snapshot readers
// keep their versions, and advances every gcInterval so version chains
// stay bounded under long-running write workloads.
const (
	gcRetention = 1024
	gcInterval  = 5 * time.Millisecond
)

// mvccGCLoop periodically raises every store's MVCC GC watermark to the
// commit clock's stable point minus a retention window. Without it the
// watermark only moved during WAL recovery, so version chains grew
// without bound for the lifetime of the process.
func (db *DB) mvccGCLoop() {
	defer db.bg.Done()
	t := time.NewTicker(gcInterval)
	defer t.Stop()
	for {
		select {
		case <-db.stopBg:
			return
		case <-t.C:
			if w := db.clock.Stable(); w > gcRetention {
				for _, n := range db.nodeList() {
					n.Store().SetWatermark(w - gcRetention)
				}
			}
		}
	}
}

// autoRepartitionLoop runs a Repartition pass every WithAutoRepartition
// interval. Passes are best-effort: one with no fresh samples (or one
// racing Close) is skipped, not fatal.
func (db *DB) autoRepartitionLoop() {
	defer db.bg.Done()
	t := time.NewTicker(db.cfg.autoRepartition)
	defer t.Stop()
	for {
		select {
		case <-db.stopBg:
			return
		case <-t.C:
			_, _ = db.Repartition(context.Background())
		}
	}
}

// AddNode grows the simulated cluster by one node and returns its ID.
// The node starts empty — it primaries no partition — but is a full
// cluster member: it mirrors the existing schema, joins the fabric, and
// contributes a coordinator engine to Execute's round-robin. Hand it
// data with MovePartition. Traffic keeps flowing during the call;
// nothing is quiesced.
func (db *DB) AddNode() (int, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if err := db.unsupported("AddNode"); err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	nodes := db.nodeList()
	id := len(nodes)
	st := storage.NewStore()
	node := server.New(db.net.Endpoint(simfab.NodeID(id)), st,
		db.registry, db.dir, cluster.PartitionID(-1))
	if db.sampler != nil {
		node.SetSampler(db.sampler)
	}
	if db.clock != nil {
		node.SetClock(db.clock)
	}
	// Mirror the existing schema so handed-off ranges land in real
	// tables with matching bucket counts rather than the tolerant
	// replica-apply defaults.
	if len(nodes) > 0 {
		src := nodes[0].Store()
		for _, tid := range src.Tables() {
			if tbl := src.Table(tid); tbl != nil {
				st.CreateTable(tid, tbl.NumBuckets())
			}
		}
	}
	if db.cfg.walDir != "" {
		l, rec, err := wal.Recover(filepath.Join(db.cfg.walDir, fmt.Sprintf("node-%d", id)), db.cfg.lanes, wal.Policy{
			FlushInterval: db.cfg.fsync.FlushInterval,
			FlushBytes:    db.cfg.fsync.FlushBytes,
			NoSync:        db.cfg.fsync.NoSync,
			SnapshotBytes: db.cfg.fsync.SnapshotBytes,
		})
		if err == nil && !rec.Empty() {
			var maxTS uint64
			if maxTS, err = server.RecoverStore(st, rec); err != nil {
				l.Close()
			} else if db.clock != nil {
				db.clock.AdvanceTo(maxTS)
			}
		}
		if err != nil {
			node.Close()
			return 0, fmt.Errorf("chiller: durability for node %d: %w", id, err)
		}
		db.wals = append(db.wals, l)
		node.SetWAL(l)
	}
	occ.RegisterVerbs(node)
	core.RegisterVerbs(node)
	grown := append(append([]*server.Node(nil), nodes...), node)
	db.nodes.Store(&grown)
	engines := append(append([]cc.Engine(nil), db.engineList()...), db.buildEngine(node))
	db.engines.Store(&engines)
	return id, nil
}

// MovePartition hands primary ownership of partition p to the given
// node via the incremental handoff protocol (see docs/ELASTICITY.md):
// the target warms up on the live replication stream while a backfill
// copies the partition's records behind it, then a brief per-partition
// fence drains pinned transactions and flips the routing. Transactions
// caught mid-flight abort with ErrMoved and succeed on retry against
// the new primary; no other partition is disturbed.
func (db *DB) MovePartition(p int, node int) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.unsupported("MovePartition"); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	nodes := db.nodeList()
	if p < 0 || p >= db.cfg.partitions {
		return fmt.Errorf("chiller: no partition %d: %w", p, ErrBadConfig)
	}
	if node < 0 || node >= len(nodes) {
		return fmt.Errorf("chiller: no node %d: %w", node, ErrBadConfig)
	}
	pid := cluster.PartitionID(p)
	from := db.topo.Primary(pid)
	if int(from) == node {
		return nil
	}
	if err := nodes[int(from)].HandoffPartition(pid, transport.NodeID(node)); err != nil {
		return fmt.Errorf("chiller: move partition %d: %w", p, err)
	}
	// Trim back to the configured replication degree. The demoted old
	// primary sits in the last replica slot (the join appends the
	// warming node, then the promotion swaps the old primary into the
	// promoted node's slot), so dropping from the tail frees the old
	// node first.
	for {
		reps := db.topo.Replicas(pid)
		if len(reps) <= db.cfg.replication-1 {
			return nil
		}
		if err := db.topo.RemoveReplica(pid, reps[len(reps)-1]); err != nil {
			return fmt.Errorf("chiller: move partition %d: trim replicas: %w", p, err)
		}
	}
}

// RemoveNode retires a node from data ownership: every partition it
// primaries is handed off to that partition's first synced replica (no
// backfill needed — the replica already holds the data), and its
// remaining replica slots are dropped. The node object stays alive as
// an empty coordinator so in-flight transactions it started can finish;
// it owns no data afterwards. Fails if a primaried partition has no
// replica to absorb it.
func (db *DB) RemoveNode(id int) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if err := db.unsupported("RemoveNode"); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	nodes := db.nodeList()
	if id < 0 || id >= len(nodes) {
		return fmt.Errorf("chiller: no node %d: %w", id, ErrBadConfig)
	}
	nid := transport.NodeID(id)
	for _, part := range db.topo.Snapshot() {
		if part.Primary != nid {
			continue
		}
		reps := db.topo.Replicas(part.ID)
		if len(reps) == 0 {
			return fmt.Errorf("chiller: remove node %d: partition %d has no replica to absorb it: %w",
				id, part.ID, ErrBadConfig)
		}
		if err := nodes[id].HandoffPartition(part.ID, reps[0]); err != nil {
			return fmt.Errorf("chiller: remove node %d: partition %d: %w", id, part.ID, err)
		}
	}
	for _, part := range db.topo.Snapshot() {
		for _, r := range part.Replicas {
			if r == nid {
				if err := db.topo.RemoveReplica(part.ID, nid); err != nil {
					return fmt.Errorf("chiller: remove node %d: %w", id, err)
				}
				break
			}
		}
	}
	return nil
}
