package chiller

import (
	"context"
	"errors"
	"testing"
	"time"
)

// openDurableBank is openBank over a WithDurability dir. The loading
// phase runs unconditionally on every open — exactly how restart code
// is expected to use the API — relying on Load yielding to recovered
// values.
func openDurableBank(t *testing.T, dir string, opts ...Option) *DB {
	t.Helper()
	return openBank(t, 3, append([]Option{
		WithDurability(dir),
		WithFsyncPolicy(FsyncPolicy{NoSync: true, FlushInterval: 50 * time.Microsecond}),
	}, opts...)...)
}

// TestDurabilityRecoversAcknowledgedCommit is the acceptance path: a
// transaction is acknowledged committed, the process "dies" (the handle
// is abandoned without Close — no drain, no clean shutdown), and a new
// Open over the same directory must come back with the committed state,
// not the initial load values.
func TestDurabilityRecoversAcknowledgedCommit(t *testing.T) {
	dir := t.TempDir()
	db := openDurableBank(t, dir)

	ctx := context.Background()
	// Cross-partition transfer: accounts 10 and 250 live on different
	// range partitions, so the commit wave and its WAL appends span two
	// nodes.
	if _, err := db.Execute(ctx, "bank.transfer", 10, 250, 700); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if got, err := db.Get(tAccounts, 10); err != nil || decBal(got) != 300 {
		t.Fatalf("pre-crash balance 10 = %d (%v), want 300", decBal(got), err)
	}

	// Process death: abandon the handle. Execute's acknowledgement
	// waited for the group-commit flush, so the records are in the log
	// files even though nothing was drained or closed.
	db = nil

	db2 := openDurableBank(t, dir)
	if got, err := db2.Get(tAccounts, 10); err != nil || decBal(got) != 300 {
		t.Fatalf("recovered balance 10 = %d (%v), want 300", decBal(got), err)
	}
	if got, err := db2.Get(tAccounts, 250); err != nil || decBal(got) != 1700 {
		t.Fatalf("recovered balance 250 = %d (%v), want 1700", decBal(got), err)
	}
	// An untouched account keeps its loaded value.
	if got, err := db2.Get(tAccounts, 42); err != nil || decBal(got) != 1000 {
		t.Fatalf("recovered balance 42 = %d (%v), want 1000", decBal(got), err)
	}
	// The recovered deployment serves new traffic.
	if _, err := db2.Execute(ctx, "bank.transfer", 250, 10, 100); err != nil {
		t.Fatalf("post-recovery transfer: %v", err)
	}
	if got, err := db2.Get(tAccounts, 10); err != nil || decBal(got) != 400 {
		t.Fatalf("post-recovery balance 10 = %d (%v), want 400", decBal(got), err)
	}
}

// TestDurabilityCleanRestart closes cleanly and reopens: same contract,
// via the drain path.
func TestDurabilityCleanRestart(t *testing.T) {
	dir := t.TempDir()
	db := openDurableBank(t, dir)
	if _, err := db.Execute(context.Background(), "bank.transfer", 5, 7, 250); err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	db2 := openDurableBank(t, dir)
	if got, err := db2.Get(tAccounts, 5); err != nil || decBal(got) != 750 {
		t.Fatalf("recovered balance 5 = %d (%v), want 750", decBal(got), err)
	}
	if got, err := db2.Get(tAccounts, 7); err != nil || decBal(got) != 1250 {
		t.Fatalf("recovered balance 7 = %d (%v), want 1250", decBal(got), err)
	}
}

func TestDurabilityOptionValidation(t *testing.T) {
	if _, err := Open(WithDurability("")); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("empty dir: err = %v, want ErrBadConfig", err)
	}
	if _, err := Open(WithFsyncPolicy(FsyncPolicy{FlushInterval: time.Millisecond})); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("fsync policy without durability: err = %v, want ErrBadConfig", err)
	}
	if _, err := Open(WithFsyncPolicy(FsyncPolicy{FlushInterval: -1})); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative interval: err = %v, want ErrBadConfig", err)
	}
	if _, err := Open(
		WithTransport(TransportTCP),
		WithPeers("127.0.0.1:1"),
		WithDurability(t.TempDir()),
	); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("durability over tcp: err = %v, want ErrBadConfig", err)
	}
}
