package chiller

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/chillerdb/chiller/internal/storage"
)

// Racing Repartition against live writers must lose no committed
// write: the migration holds the old buckets' exclusive lock words
// while copying, so a concurrent transfer either lands before the copy
// (and is copied) or NO_WAIT-aborts and retries against the new
// layout. A lost debit or credit breaks conservation.
func TestRepartitionRaceLosesNoWrites(t *testing.T) {
	db := openBank(t, 2, WithSampling(1))
	ctx := context.Background()

	// Skewed warm-up so the partitioner has hot records to relocate.
	for i := 0; i < 200; i++ {
		if _, err := db.ExecuteWithRetry(ctx, Retry{}, "bank.transfer", 0, int64(1+i%150), 1); err != nil {
			t.Fatalf("warm-up transfer %d: %v", i, err)
		}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Everyone keeps hammering the hot account so the race
				// window (writer vs mid-migration record) actually hits.
				src, dst := int64(0), int64(1+(g*37+i)%199)
				if _, err := db.ExecuteWithRetry(ctx, Retry{}, "bank.transfer", src, dst, 1); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}

	for pass := 0; pass < 5; pass++ {
		if _, err := db.Repartition(ctx); err != nil {
			close(stop)
			wg.Wait()
			t.Fatalf("repartition pass %d: %v", pass, err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("writer failed during repartition: %v", err)
	default:
	}

	var total int64
	for k := Key(0); k < 200; k++ {
		v, err := db.Get(tAccounts, k)
		if err != nil {
			t.Fatalf("account %d unreadable after repartition race: %v", k, err)
		}
		total += decBal(v)
	}
	if total != 200*1000 {
		t.Fatalf("conservation violated after racing repartition: total = %d, want %d", total, 200*1000)
	}
}

// The MVCC GC watermark must advance during pure uptime (not only at
// WAL recovery), keeping version chains bounded under a long-running
// write workload.
func TestMVCCChainDepthBounded(t *testing.T) {
	db := openBank(t, 1, WithMVCC())
	bump := NewProc("acct.bump")
	bump.Update(tAccounts, Arg(0), func(old []byte, _ Args, _ Reads) ([]byte, error) {
		return encBal(decBal(old) + 1), nil
	})
	if err := db.Register(bump); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	const writes = 6000
	for i := 0; i < writes; i++ {
		if _, err := db.ExecuteWithRetry(ctx, Retry{}, "acct.bump", 0); err != nil {
			t.Fatalf("bump %d: %v", i, err)
		}
	}

	// Let the GC loop observe the stable clock, then one more write so
	// the (lazy, on-write) prune runs against the advanced watermark.
	time.Sleep(10 * gcInterval)
	if _, err := db.ExecuteWithRetry(ctx, Retry{}, "acct.bump", 0); err != nil {
		t.Fatal(err)
	}

	st := db.nodeList()[0].Store()
	if st.Watermark() == 0 {
		t.Fatal("GC watermark never advanced under pure uptime")
	}
	depth := st.Table(storage.TableID(tAccounts)).ChainDepth(storage.Key(0))
	if depth == 0 {
		t.Fatal("no versions retained — MVCC off?")
	}
	// Retention is gcRetention timestamps; the chain must be near that
	// bound, not near the full write count.
	if depth > 2*gcRetention {
		t.Fatalf("version chain depth %d exceeds retention bound %d (writes: %d)", depth, 2*gcRetention, writes)
	}
}

// A node added under live load takes a partition through the
// incremental handoff and serves it, with every in-flight writer
// retrying through the fence — no lost keys, no broken conservation,
// no stall.
func TestAddNodeHandoffUnderLoad(t *testing.T) {
	db := openBank(t, 3)
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var commits atomic.Int64
	errs := make(chan error, 3)
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Mix local and cross-partition transfers, always touching
				// the moving partition (keys 0..99).
				src := int64((g*31 + i) % 100)
				dst := int64(100 + (g*53+i*7)%200)
				if _, err := db.ExecuteWithRetry(ctx, Retry{}, "bank.transfer", src, dst, 1); err != nil {
					errs <- err
					return
				}
				commits.Add(1)
			}
		}(g)
	}

	time.Sleep(2 * time.Millisecond)
	id, err := db.AddNode()
	if err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("AddNode: %v", err)
	}
	if err := db.MovePartition(0, id); err != nil {
		close(stop)
		wg.Wait()
		t.Fatalf("MovePartition: %v", err)
	}
	// Load keeps running against the new primary.
	time.Sleep(2 * time.Millisecond)
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatalf("writer failed across the handoff: %v", err)
	default:
	}
	if commits.Load() == 0 {
		t.Fatal("no transaction committed during the membership change")
	}

	if got := int(db.topo.Primary(0)); got != id {
		t.Fatalf("partition 0 primary = node %d, want handed-off node %d", got, id)
	}
	// Lost-key + conservation oracle: every account readable at its
	// current primary, total balance unchanged.
	var total int64
	for k := Key(0); k < 300; k++ {
		v, err := db.Get(tAccounts, k)
		if err != nil {
			t.Fatalf("account %d lost in handoff: %v", k, err)
		}
		total += decBal(v)
	}
	if total != 300*1000 {
		t.Fatalf("conservation violated across handoff: total = %d, want %d", total, 300*1000)
	}
}

// RemoveNode hands every partition the node primaries back to a
// surviving replica and drops the node from the layout; data stays
// served.
func TestRemoveNodeHandsPartitionsBack(t *testing.T) {
	db := openBank(t, 2)
	ctx := context.Background()

	id, err := db.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := db.MovePartition(1, id); err != nil {
		t.Fatalf("MovePartition: %v", err)
	}
	if _, err := db.ExecuteWithRetry(ctx, Retry{}, "bank.transfer", 150, 10, 75); err != nil {
		t.Fatalf("transfer on grown cluster: %v", err)
	}

	if err := db.RemoveNode(id); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	if got := int(db.topo.Primary(1)); got == id {
		t.Fatalf("removed node %d still primaries partition 1", id)
	}
	for _, p := range db.topo.Snapshot() {
		if int(p.Primary) == id {
			t.Fatalf("removed node %d still primaries a partition: %+v", id, p)
		}
		for _, r := range p.Replicas {
			if int(r) == id {
				t.Fatalf("removed node %d still replicates a partition: %+v", id, p)
			}
		}
	}
	// The pre-removal write survived the hand-back.
	if v, err := db.Get(tAccounts, 150); err != nil || decBal(v) != 925 {
		t.Fatalf("balance 150 after node removal = %d (%v), want 925", decBal(v), err)
	}
	if _, err := db.ExecuteWithRetry(ctx, Retry{}, "bank.transfer", 150, 10, 25); err != nil {
		t.Fatalf("transfer after node removal: %v", err)
	}
}

// Commits against a handed-off partition must be recoverable on its
// new owner: the new primary WAL-logs every apply (handoff backfill
// included) and its streams make the surviving replica durable too.
// After a hard crash, a founders-only restart recovers the range on
// the replica, and re-adding the node recovers the new owner's own
// log. (The demoted primary is trimmed from the replica set by the
// hand-off, so its store legitimately stays at pre-handoff state —
// the restart's founding-layout topology is stale by design until the
// operator re-runs the handoff.)
func TestDurabilityHandoffRecovery(t *testing.T) {
	dir := t.TempDir()
	db := openDurableBank(t, dir)
	ctx := context.Background()

	id, err := db.AddNode()
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if err := db.MovePartition(0, id); err != nil {
		t.Fatalf("MovePartition: %v", err)
	}
	// The surviving replica of the moved partition (the demoted primary
	// got trimmed when the new one joined the set).
	reps := db.topo.Replicas(0)
	if len(reps) == 0 {
		t.Fatal("moved partition has no replica")
	}
	replica := int(reps[0])
	// Commits landing on the handed-off partition's new primary.
	if _, err := db.Execute(ctx, "bank.transfer", 10, 20, 400); err != nil {
		t.Fatalf("transfer after handoff: %v", err)
	}
	if _, err := db.Execute(ctx, "bank.transfer", 30, 250, 100); err != nil {
		t.Fatalf("cross-partition transfer after handoff: %v", err)
	}

	// Process death: abandon the handle without Close.
	db = nil

	// Restart with the founding member count. The unaffected partition
	// recovered normally; the handed-off range recovered on the
	// surviving replica (its stream applies were flushed before the
	// commits acked).
	db2 := openDurableBank(t, dir)
	if v, err := db2.Get(tAccounts, 250); err != nil || decBal(v) != 1100 {
		t.Fatalf("recovered balance 250 = %d (%v), want 1100", decBal(v), err)
	}
	rtbl := db2.nodeList()[replica].Store().Table(storage.TableID(tAccounts))
	if rtbl == nil {
		t.Fatalf("replica node %d recovered no account table", replica)
	}
	if v, _, err := rtbl.Bucket(storage.Key(10)).Get(storage.Key(10)); err != nil || decBal(v) != 600 {
		t.Fatalf("replica-recovered balance 10 = %d (%v), want 600", decBal(v), err)
	}

	// Re-adding the node recovers the new owner's own log: the
	// handed-off range is back in the rejoined node's store before any
	// new handoff runs.
	id2, err := db2.AddNode()
	if err != nil {
		t.Fatalf("re-AddNode: %v", err)
	}
	if id2 != id {
		t.Fatalf("rejoined node id = %d, want %d", id2, id)
	}
	tbl := db2.nodeList()[id2].Store().Table(storage.TableID(tAccounts))
	if tbl == nil {
		t.Fatal("rejoined node recovered no account table")
	}
	for _, c := range []struct {
		key  Key
		want int64
	}{{10, 600}, {20, 1400}, {30, 900}} {
		if v, _, err := tbl.Bucket(storage.Key(c.key)).Get(storage.Key(c.key)); err != nil || decBal(v) != c.want {
			t.Fatalf("rejoined node's recovered balance %d = %d (%v), want %d", c.key, decBal(v), err, c.want)
		}
	}
}
