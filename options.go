package chiller

import (
	"errors"
	"fmt"
	"time"

	"github.com/chillerdb/chiller/internal/cluster"
	"github.com/chillerdb/chiller/internal/history"
	"github.com/chillerdb/chiller/internal/storage"
)

var errNilRecorder = errors.New("chiller: nil history recorder")

// EngineKind selects the concurrency-control engine a DB executes with.
type EngineKind string

// The three engines of the paper's evaluation. EngineChiller is the
// default; the 2PL and OCC baselines exist for comparison.
const (
	EngineChiller EngineKind = "Chiller"
	Engine2PL     EngineKind = "2PL"
	EngineOCC     EngineKind = "OCC"
)

// TransportKind selects the fabric a DB runs over.
type TransportKind string

// The two fabrics a DB can be opened on.
const (
	// TransportSim is the default: an embedded, simulated multi-node
	// cluster inside this process, with configurable latency, jitter,
	// and deterministic fault injection.
	TransportSim TransportKind = "simnet"
	// TransportTCP joins a cluster of chiller-node processes over TCP as
	// a coordinator-only client. Requires WithPeers; the
	// simulation-only options (WithPartitions, WithLatency, WithJitter,
	// WithSampling) are rejected with ErrBadConfig, and store-touching
	// DB methods return ErrUnsupported (the data lives in the node
	// processes). See docs/NETWORK.md for the transport semantics.
	TransportTCP TransportKind = "tcp"
)

// config collects Open's settings; Options mutate it.
type config struct {
	partitions   int
	replication  int
	latency      time.Duration
	jitter       time.Duration
	lanes        int
	seed         int64
	engine       EngineKind
	partitioner  cluster.DefaultPartitioner
	sampleRate   float64
	verbBatching bool
	recorder     *history.Recorder
	walDir       string
	fsync        FsyncPolicy
	mvcc         bool
	// autoRepartition > 0 starts the background repartitioner at that
	// interval (WithAutoRepartition).
	autoRepartition time.Duration

	transport  TransportKind
	listenAddr string
	peers      []string

	// simOnly names every simulation-only option that was explicitly
	// set, so Open can reject the combination with TransportTCP by name.
	simOnly []string
}

// Option configures Open.
type Option func(*config) error

// WithPartitions sets the number of partitions (each backed by one
// simulated node). Default 1.
func WithPartitions(n int) Option {
	return func(c *config) error {
		if n <= 0 {
			return fmt.Errorf("chiller: partitions must be positive, got %d: %w", n, ErrBadConfig)
		}
		c.partitions = n
		c.simOnly = append(c.simOnly, "WithPartitions")
		return nil
	}
}

// WithReplication sets the replication degree: 1 means no replicas, 2
// (the paper's evaluation setting) means one synchronous backup per
// partition. Default 1.
func WithReplication(degree int) Option {
	return func(c *config) error {
		if degree <= 0 {
			return fmt.Errorf("chiller: replication degree must be positive, got %d: %w", degree, ErrBadConfig)
		}
		c.replication = degree
		return nil
	}
}

// WithLatency sets the simulated one-way network latency between nodes.
// The paper's InfiniBand EDR testbed sits around 1-2µs; the default is
// 5µs.
func WithLatency(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("chiller: negative latency %v: %w", d, ErrBadConfig)
		}
		c.latency = d
		c.simOnly = append(c.simOnly, "WithLatency")
		return nil
	}
}

// WithJitter adds random extra delay in [0, d) to every message.
func WithJitter(d time.Duration) Option {
	return func(c *config) error {
		if d < 0 {
			return fmt.Errorf("chiller: negative jitter %v: %w", d, ErrBadConfig)
		}
		c.jitter = d
		c.simOnly = append(c.simOnly, "WithJitter")
		return nil
	}
}

// WithLanes sets the number of single-threaded execution lanes per node
// — the paper's one-engine-per-core deployment. 0 (the default) derives
// a count from the host's CPUs (capped at 4); 1 restores
// single-engine-per-node behaviour.
func WithLanes(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("chiller: negative lane count %d: %w", n, ErrBadConfig)
		}
		c.lanes = n
		return nil
	}
}

// WithVerbBatching selects the fabric transport for the Chiller
// engine's fan-outs. When on, every verb bound for one destination node
// in an outer lock wave, replica scatter, or commit wave rides a single
// doorbell-batched one-sided ring — one network round trip per node per
// wave instead of one per verb, the batching the paper's transport
// argument assumes (§3). Off (the default) keeps one RPC per verb. The
// 2PL and OCC engines always use the scalar path, so the option only
// affects EngineChiller deployments. See docs/NETWORK.md for the verb
// model.
func WithVerbBatching(on bool) Option {
	return func(c *config) error {
		c.verbBatching = on
		return nil
	}
}

// WithMVCC switches the stores to multi-version records and attaches a
// cluster-shared commit clock: every commit-point apply (primary and
// replica alike) is stamped with a commit timestamp, and procedures
// registered ReadOnly execute on a lock-free snapshot path — they take
// a stable snapshot timestamp, read committed versions without touching
// any lock word, never conflict-abort, and issue zero network verbs for
// partitions this coordinator holds locally (as primary or replica).
// Writing procedures are unaffected and keep full serializability; the
// snapshot path guarantees snapshot isolation for the read-only
// transactions (see docs/MVCC.md). Simulation-only: over TransportTCP
// the stores live in the node processes.
func WithMVCC() Option {
	return func(c *config) error {
		c.mvcc = true
		c.simOnly = append(c.simOnly, "WithMVCC")
		return nil
	}
}

// WithSeed makes the simulated fabric's jitter and sampling
// reproducible.
func WithSeed(seed int64) Option {
	return func(c *config) error {
		c.seed = seed
		return nil
	}
}

// WithEngine selects the concurrency-control engine. Default
// EngineChiller.
func WithEngine(kind EngineKind) Option {
	return func(c *config) error {
		switch kind {
		case EngineChiller, Engine2PL, EngineOCC:
			c.engine = kind
			return nil
		}
		return fmt.Errorf("chiller: unknown engine kind %q: %w", kind, ErrBadConfig)
	}
}

// WithHashPartitioner routes records by a hash of (table, key) — the
// default when no partitioner option is given.
func WithHashPartitioner() Option {
	return func(c *config) error {
		c.partitioner = nil // resolved against the partition count in Open
		return nil
	}
}

// WithRangePartitioner routes each table by dividing its key space
// [0, maxKey) into contiguous per-partition ranges. Tables absent from
// the map fall back to key modulo partitions.
func WithRangePartitioner(maxKey map[Table]Key) Option {
	return func(c *config) error {
		mk := make(map[storage.TableID]storage.Key, len(maxKey))
		for t, k := range maxKey {
			mk[storage.TableID(t)] = storage.Key(k)
		}
		c.partitioner = rangePartitioner{maxKey: mk}
		return nil
	}
}

// WithPartitionFunc installs a custom default partitioner. fn must be
// pure and total: every (table, key) maps to a partition in
// [0, partitions). Hot records relocated by MarkHot or Repartition
// override it through the lookup table.
func WithPartitionFunc(name string, fn func(table Table, key Key) int) Option {
	return func(c *config) error {
		if fn == nil {
			return fmt.Errorf("chiller: nil partition func: %w", ErrBadConfig)
		}
		c.partitioner = funcPartitioner{name: name, fn: fn}
		return nil
	}
}

// WithSampling enables transaction access-set sampling at the given
// rate in (0, 1] (the paper samples ~0.1%, rate 0.001). Sampling feeds
// Repartition; without it Repartition returns an error.
func WithSampling(rate float64) Option {
	return func(c *config) error {
		if rate <= 0 || rate > 1 {
			return fmt.Errorf("chiller: sampling rate %v outside (0, 1]: %w", rate, ErrBadConfig)
		}
		c.sampleRate = rate
		c.simOnly = append(c.simOnly, "WithSampling")
		return nil
	}
}

// WithAutoRepartition starts a background repartitioner: every interval
// the DB runs one Repartition pass over the access samples collected
// since the last pass, relocating records whose contention likelihood
// crossed the threshold and rewriting the hot lookup table — the
// paper's contention-centric partitioning run continuously instead of
// from a maintenance window. Passes with no fresh samples are skipped.
// Requires WithSampling; simulation-only (over TransportTCP the stores
// live in the node processes). See docs/ELASTICITY.md.
func WithAutoRepartition(interval time.Duration) Option {
	return func(c *config) error {
		if interval <= 0 {
			return fmt.Errorf("chiller: auto-repartition interval %v must be positive: %w", interval, ErrBadConfig)
		}
		c.autoRepartition = interval
		c.simOnly = append(c.simOnly, "WithAutoRepartition")
		return nil
	}
}

// FsyncPolicy tunes the write-ahead log's group commit and snapshot
// cadence (see WithDurability). The zero value takes the engine
// defaults. See docs/DURABILITY.md for the trade-offs.
type FsyncPolicy struct {
	// FlushInterval is the longest a committed transaction's
	// acknowledgement waits for its fsync batch (default 200µs).
	// Shorter favors commit latency, longer favors batching.
	FlushInterval time.Duration
	// FlushBytes triggers an early flush once this many unflushed log
	// bytes accumulate on a node (default 256 KiB).
	FlushBytes int
	// NoSync skips the fsync syscall: records still reach the OS
	// (surviving process death within the same boot) but not a power
	// failure. Substantially faster; the durability contract weakens
	// from crash-safe to process-death-safe.
	NoSync bool
	// SnapshotBytes, when > 0, snapshots a lane's records and truncates
	// its log once the log grows past this many bytes (default: no
	// automatic snapshots; the log grows until Close).
	SnapshotBytes int64
}

// WithDurability attaches a write-ahead log under dir — one directory
// per node, one append-only log per execution lane — making every
// acknowledged commit durable: a transaction's acknowledgement waits
// for its log records' group-commit flush, and a subsequent Open with
// the same dir replays snapshot+tail into the stores before serving
// traffic, so records Loaded or committed in a previous process
// incarnation come back. Simulation-only: over TransportTCP the data
// (and its durability, via chiller-node's -data-dir flag) lives in the
// node processes.
func WithDurability(dir string) Option {
	return func(c *config) error {
		if dir == "" {
			return fmt.Errorf("chiller: empty durability dir: %w", ErrBadConfig)
		}
		c.walDir = dir
		c.simOnly = append(c.simOnly, "WithDurability")
		return nil
	}
}

// WithFsyncPolicy tunes the group-commit and snapshot behaviour of the
// write-ahead log attached by WithDurability (which it requires).
func WithFsyncPolicy(p FsyncPolicy) Option {
	return func(c *config) error {
		if p.FlushInterval < 0 {
			return fmt.Errorf("chiller: negative flush interval %v: %w", p.FlushInterval, ErrBadConfig)
		}
		if p.FlushBytes < 0 {
			return fmt.Errorf("chiller: negative flush bytes %d: %w", p.FlushBytes, ErrBadConfig)
		}
		if p.SnapshotBytes < 0 {
			return fmt.Errorf("chiller: negative snapshot bytes %d: %w", p.SnapshotBytes, ErrBadConfig)
		}
		c.fsync = p
		c.simOnly = append(c.simOnly, "WithFsyncPolicy")
		return nil
	}
}

// WithTransport selects the fabric: TransportSim (the default, an
// embedded simulated cluster) or TransportTCP (join a running
// chiller-node cluster; requires WithPeers). The two transports are
// mutually exclusive with each other's knobs — see TransportTCP for
// which options the TCP client rejects.
func WithTransport(kind TransportKind) Option {
	return func(c *config) error {
		switch kind {
		case TransportSim, TransportTCP:
			c.transport = kind
			return nil
		}
		return fmt.Errorf("chiller: unknown transport %q: %w", kind, ErrBadConfig)
	}
}

// WithPeers lists every node of the TCP cluster to join; index i is
// node i, exactly as the nodes' own -peers flags order them. The
// partition count is derived from the peer list (one partition per
// node), so WithPartitions is rejected alongside it. Only valid with
// WithTransport(TransportTCP).
//
// The client is a full coordinator: replication degree, lane count,
// and partitioner must match what the nodes were started with (they
// shape verb addressing and are not negotiated on the wire).
func WithPeers(addrs ...string) Option {
	return func(c *config) error {
		if len(addrs) == 0 {
			return fmt.Errorf("chiller: WithPeers needs at least one address: %w", ErrBadConfig)
		}
		c.peers = append([]string(nil), addrs...)
		return nil
	}
}

// WithListenAddr sets the TCP client's own listen address (completions
// and replies arrive on connections the client dialed, so the listener
// mostly matters when node processes are expected to dial back; the
// default "127.0.0.1:0" picks a free loopback port). Only valid with
// WithTransport(TransportTCP).
func WithListenAddr(addr string) Option {
	return func(c *config) error {
		if addr == "" {
			return fmt.Errorf("chiller: empty listen address: %w", ErrBadConfig)
		}
		c.listenAddr = addr
		return nil
	}
}

// rangePartitioner adapts cluster.RangePartitioner to a deferred
// partition count (Open fills n after options are applied).
type rangePartitioner struct {
	n      int
	maxKey map[storage.TableID]storage.Key
}

func (r rangePartitioner) Partition(rid storage.RID) cluster.PartitionID {
	return cluster.RangePartitioner{N: r.n, MaxKey: r.maxKey}.Partition(rid)
}

func (r rangePartitioner) Name() string { return "range" }

// funcPartitioner adapts a public partition func.
type funcPartitioner struct {
	name string
	fn   func(Table, Key) int
}

func (f funcPartitioner) Partition(rid storage.RID) cluster.PartitionID {
	return cluster.PartitionID(f.fn(Table(rid.Table), Key(rid.Key)))
}

func (f funcPartitioner) Name() string {
	if f.name == "" {
		return "func"
	}
	return f.name
}
