package chiller

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/chillerdb/chiller/internal/cc/occ"
	"github.com/chillerdb/chiller/internal/cluster"
	"github.com/chillerdb/chiller/internal/core"
	"github.com/chillerdb/chiller/internal/server"
	"github.com/chillerdb/chiller/internal/storage"
	"github.com/chillerdb/chiller/internal/tcpnet"
	"github.com/chillerdb/chiller/internal/transport"
	"github.com/chillerdb/chiller/internal/txn"
)

const tcpAccounts Table = 1

func tcpEnc(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func tcpDec(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// tcpTransferProc builds the bank.transfer(src, dst, amount) procedure
// used on both sides of the wire (nodes and client must register
// identical procedures; they are not shipped over the network).
func tcpTransferProc() *Proc {
	p := NewProc("bank.transfer")
	p.Update(tcpAccounts, Arg(0), func(old []byte, args Args, _ Reads) ([]byte, error) {
		if tcpDec(old) < args[2] {
			return nil, fmt.Errorf("insufficient funds")
		}
		return tcpEnc(tcpDec(old) - args[2]), nil
	})
	p.Update(tcpAccounts, Arg(1), func(old []byte, args Args, _ Reads) ([]byte, error) {
		return tcpEnc(tcpDec(old) + args[2]), nil
	})
	return p
}

func tcpPartitioner(parts int) cluster.DefaultPartitioner {
	return cluster.RangePartitioner{
		N:      parts,
		MaxKey: map[storage.TableID]storage.Key{storage.TableID(tcpAccounts): 200},
	}
}

// startTCPTestCluster brings up `parts` in-process node "processes"
// over real loopback sockets — the same wiring cmd/chiller-node does,
// minus the process boundary — each loading its share of 200 accounts
// at balance 1000. It returns the peer list and the per-node stores for
// post-commit inspection.
func startTCPTestCluster(t *testing.T, parts int) ([]string, []*storage.Store) {
	t.Helper()
	proc, err := tcpTransferProc().build()
	if err != nil {
		t.Fatal(err)
	}
	topo := cluster.NewTopology(parts, 1)
	fabs := make([]*tcpnet.Fabric, parts)
	addrs := make(map[transport.NodeID]string, parts)
	peers := make([]string, parts)
	for i := range fabs {
		fab, err := tcpnet.New(tcpnet.Config{ID: transport.NodeID(i)})
		if err != nil {
			t.Fatal(err)
		}
		fabs[i] = fab
		addrs[transport.NodeID(i)] = fab.Addr()
		peers[i] = fab.Addr()
	}
	stores := make([]*storage.Store, parts)
	for i, fab := range fabs {
		fab.SetPeers(addrs)
		dir := cluster.NewDirectory(topo, tcpPartitioner(parts))
		dir.SetLanes(cluster.DefaultLanes())
		reg := txn.NewRegistry()
		if err := reg.Register(proc); err != nil {
			t.Fatal(err)
		}
		st := storage.NewStore()
		st.CreateTable(storage.TableID(tcpAccounts), 256)
		node := server.New(fab, st, reg, dir, cluster.PartitionID(i))
		occ.RegisterVerbs(node)
		core.RegisterVerbs(node)
		eng := core.New(node)
		stores[i] = st
		for k := storage.Key(0); k < 200; k++ {
			rid := storage.RID{Table: storage.TableID(tcpAccounts), Key: k}
			if topo.Primary(dir.Partition(rid)) != transport.NodeID(i) {
				continue
			}
			if err := st.Table(rid.Table).Bucket(k).Insert(k, tcpEnc(1000)); err != nil {
				t.Fatal(err)
			}
		}
		fab, node, eng := fab, node, eng
		t.Cleanup(func() {
			eng.Drain()
			fab.Close()
			node.Close()
		})
	}
	return peers, stores
}

func TestOpenTCPExecute(t *testing.T) {
	peers, stores := startTCPTestCluster(t, 2)
	db, err := Open(
		WithTransport(TransportTCP),
		WithPeers(peers...),
		WithRangePartitioner(map[Table]Key{tcpAccounts: 200}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if got := db.Partitions(); got != 2 {
		t.Fatalf("Partitions() = %d, want 2 (derived from peers)", got)
	}
	if err := db.Register(tcpTransferProc()); err != nil {
		t.Fatal(err)
	}

	// Store-touching methods are typed-unsupported on a TCP client.
	if err := db.CreateTable(tcpAccounts, 8); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("CreateTable: got %v, want ErrUnsupported", err)
	}
	if err := db.Load(tcpAccounts, 1, tcpEnc(5)); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Load: got %v, want ErrUnsupported", err)
	}
	if _, err := db.Get(tcpAccounts, 1); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Get: got %v, want ErrUnsupported", err)
	}
	if err := db.MarkHot(tcpAccounts, 1); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("MarkHot: got %v, want ErrUnsupported", err)
	}
	if _, err := db.Repartition(context.Background()); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("Repartition: got %v, want ErrUnsupported", err)
	}

	// Cross-partition transfer: key 10 lives on node 0, key 150 on node 1.
	res, err := db.ExecuteWithRetry(context.Background(), Retry{}, "bank.transfer", 10, 150, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Distributed {
		t.Fatal("transfer of keys 10 and 150 should be distributed")
	}
	// An overdraft aborts with the application's constraint error.
	if _, err := db.Execute(context.Background(), "bank.transfer", 11, 150, 1_000_000); !errors.Is(err, ErrConstraint) {
		t.Fatalf("overdraft: got %v, want ErrConstraint", err)
	}

	// The committed writes landed in the node processes' stores.
	read := func(node int, k storage.Key) int64 {
		t.Helper()
		v, _, err := stores[node].Table(storage.TableID(tcpAccounts)).Bucket(k).Get(k)
		if err != nil {
			t.Fatalf("read node %d key %d: %v", node, k, err)
		}
		return tcpDec(v)
	}
	deadline := time.Now().Add(5 * time.Second)
	for read(0, 10) != 975 || read(1, 150) != 1025 {
		if time.Now().After(deadline) {
			t.Fatalf("balances = %d/%d, want 975/1025", read(0, 10), read(1, 150))
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOpenTCPConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
	}{
		{"peers without tcp transport", []Option{WithPeers("127.0.0.1:1")}},
		{"listen addr without tcp transport", []Option{WithListenAddr("127.0.0.1:0")}},
		{"tcp transport without peers", []Option{WithTransport(TransportTCP)}},
		{"unknown transport", []Option{WithTransport("carrier-pigeon")}},
		{"empty peer list", []Option{WithTransport(TransportTCP), WithPeers()}},
		{"tcp with partitions", []Option{WithTransport(TransportTCP), WithPeers("127.0.0.1:1"), WithPartitions(3)}},
		{"tcp with latency", []Option{WithTransport(TransportTCP), WithPeers("127.0.0.1:1"), WithLatency(time.Millisecond)}},
		{"tcp with jitter", []Option{WithTransport(TransportTCP), WithPeers("127.0.0.1:1"), WithJitter(time.Millisecond)}},
		{"tcp with sampling", []Option{WithTransport(TransportTCP), WithPeers("127.0.0.1:1"), WithSampling(0.1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db, err := Open(tc.opts...)
			if err == nil {
				db.Close()
				t.Fatal("Open succeeded, want ErrBadConfig")
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("got %v, want ErrBadConfig", err)
			}
		})
	}
}
