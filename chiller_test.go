package chiller

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/chillerdb/chiller/internal/storage"
)

const tAccounts Table = 1

func encBal(v int64) []byte {
	out := make([]byte, 8)
	binary.LittleEndian.PutUint64(out, uint64(v))
	return out
}

func decBal(p []byte) int64 {
	if len(p) < 8 {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(p))
}

// transferProc builds the canonical two-op transfer: debit args[0],
// credit args[1], amount args[2], aborting on overdraft.
func transferProc(name string) *Proc {
	p := NewProc(name)
	p.Update(tAccounts, Arg(0), func(old []byte, args Args, _ Reads) ([]byte, error) {
		bal := decBal(old)
		if bal < args[2] {
			return nil, fmt.Errorf("insufficient funds: %d < %d", bal, args[2])
		}
		return encBal(bal - args[2]), nil
	})
	p.Update(tAccounts, Arg(1), func(old []byte, args Args, _ Reads) ([]byte, error) {
		return encBal(decBal(old) + args[2]), nil
	})
	return p
}

// openBank is the shared fixture: nParts partitions, replication 2 (when
// possible), 100 accounts per partition range-partitioned, the transfer
// procedure registered.
func openBank(t *testing.T, nParts int, opts ...Option) *DB {
	t.Helper()
	repl := 2
	if nParts == 1 {
		repl = 1
	}
	opts = append([]Option{
		WithPartitions(nParts),
		WithReplication(repl),
		WithRangePartitioner(map[Table]Key{tAccounts: Key(100 * nParts)}),
		WithSeed(7),
	}, opts...)
	db, err := Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.CreateTable(tAccounts, 1024); err != nil {
		t.Fatal(err)
	}
	for k := Key(0); k < Key(100*nParts); k++ {
		if err := db.Load(tAccounts, k, encBal(1000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Register(transferProc("bank.transfer")); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestExecuteCommitAndReads(t *testing.T) {
	db := openBank(t, 2)
	ctx := context.Background()

	res, err := db.Execute(ctx, "bank.transfer", 0, 150, 25)
	if err != nil {
		t.Fatalf("transfer: %v", err)
	}
	if !res.Distributed {
		t.Error("cross-partition transfer not marked distributed")
	}
	if v, ok := res.Read(0); !ok || decBal(v) != 1000 {
		t.Errorf("op 0 read = %v, %v; want old balance 1000", v, ok)
	}
	if v, err := db.Get(tAccounts, 0); err != nil || decBal(v) != 975 {
		t.Errorf("source balance = %v, %v; want 975", v, err)
	}
	if v, err := db.Get(tAccounts, 150); err != nil || decBal(v) != 1025 {
		t.Errorf("dest balance = %v, %v; want 1025", v, err)
	}
}

func TestTypedErrors(t *testing.T) {
	db := openBank(t, 2)
	ctx := context.Background()

	// Unknown procedure.
	if _, err := db.Execute(ctx, "no.such.proc", 1); !errors.Is(err, ErrUnknownProc) {
		t.Errorf("unknown proc error = %v; want ErrUnknownProc", err)
	}

	// Constraint violation (overdraft) — matches both the specific
	// sentinel and the ErrAborted umbrella, and is not retryable.
	_, err := db.Execute(ctx, "bank.transfer", 0, 1, 99999)
	if !errors.Is(err, ErrConstraint) || !errors.Is(err, ErrAborted) {
		t.Errorf("overdraft error = %v; want ErrConstraint and ErrAborted", err)
	}
	if Retryable(err) {
		t.Error("constraint violation reported retryable")
	}
	var ae *AbortError
	if !errors.As(err, &ae) || ae.Reason() != "constraint" {
		t.Errorf("AbortError reason = %v; want constraint", err)
	}

	// Missing record.
	if _, err := db.Execute(ctx, "bank.transfer", 99999, 1, 5); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing record error = %v; want ErrNotFound", err)
	}

	// Lock conflict: hold the bucket lock under the engine's feet.
	rid := storage.RID{Table: storage.TableID(tAccounts), Key: 3}
	bucket := db.nodeList()[int(db.dir.Partition(rid))].Store().Table(rid.Table).Bucket(rid.Key)
	if !bucket.Lock.TryLock(storage.LockExclusive) {
		t.Fatal("setup: bucket already locked")
	}
	_, err = db.Execute(ctx, "bank.transfer", 3, 4, 5)
	bucket.Lock.Unlock(storage.LockExclusive)
	if !errors.Is(err, ErrLockConflict) || !errors.Is(err, ErrAborted) {
		t.Errorf("conflict error = %v; want ErrLockConflict and ErrAborted", err)
	}
	if !Retryable(err) {
		t.Error("lock conflict not reported retryable")
	}
}

func TestRetryPolicy(t *testing.T) {
	db := openBank(t, 1)
	ctx := context.Background()

	// A held lock makes every attempt fail: MaxAttempts bounds the loop.
	rid := storage.RID{Table: storage.TableID(tAccounts), Key: 5}
	bucket := db.nodeList()[0].Store().Table(rid.Table).Bucket(rid.Key)
	if !bucket.Lock.TryLock(storage.LockExclusive) {
		t.Fatal("setup: bucket already locked")
	}
	attempts := 0
	_, err := Retry{MaxAttempts: 3}.Do(ctx, func(ctx context.Context) (Result, error) {
		attempts++
		return db.Execute(ctx, "bank.transfer", 5, 6, 1)
	})
	if attempts != 3 {
		t.Errorf("attempts = %d; want 3", attempts)
	}
	if !errors.Is(err, ErrLockConflict) {
		t.Errorf("exhausted retry error = %v; want ErrLockConflict", err)
	}
	bucket.Lock.Unlock(storage.LockExclusive)

	// With the lock released the same transfer commits on first try.
	if _, err := db.ExecuteWithRetry(ctx, Retry{}, "bank.transfer", 5, 6, 1); err != nil {
		t.Fatalf("post-release transfer: %v", err)
	}
}

// TestExecuteExpiredDeadline asserts the satellite requirement: an
// already-expired deadline returns context.DeadlineExceeded without
// issuing a single network verb.
func TestExecuteExpiredDeadline(t *testing.T) {
	db := openBank(t, 2)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	before := db.net.Stats().MessagesSent.Load()
	_, err := db.Execute(ctx, "bank.transfer", 0, 150, 1)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v; want context.DeadlineExceeded", err)
	}
	if after := db.net.Stats().MessagesSent.Load(); after != before {
		t.Errorf("expired-deadline Execute sent %d network messages", after-before)
	}
}

// TestCancelMidTransactionReleasesLocks asserts the satellite
// requirement: a transaction cancelled mid outer-wave aborts cleanly and
// releases every lock it acquired — the participant lock tables are
// empty after the abort and stay empty through Close.
func TestCancelMidTransactionReleasesLocks(t *testing.T) {
	// 5ms one-way latency makes the first remote lock wave take ~10ms,
	// far past the 1ms deadline, so the cancellation check at the next
	// wave boundary fires deterministically — after wave 1's locks were
	// acquired.
	db := openBank(t, 2, WithLatency(5*time.Millisecond))

	// A dependent-key procedure forces a final lock wave whose key is
	// only resolvable from earlier reads — and those reads span both
	// partitions, so whichever node coordinates, at least one earlier
	// wave crosses a 5ms link and the deadline expires before the final
	// wave's boundary check.
	p := NewProc("bank.chain")
	a := p.Read(tAccounts, Arg(0))
	b := p.Read(tAccounts, Arg(1))
	p.Update(tAccounts, func(_ Args, reads Reads) (Key, bool) {
		va, okA := reads[0]
		vb, okB := reads[1]
		if !okA || !okB {
			return 0, false
		}
		return Key((decBal(va) + decBal(vb)) % 200), true
	}, func(old []byte, _ Args, _ Reads) ([]byte, error) {
		return encBal(decBal(old) + 1), nil
	}).KeyFrom(a, b)
	if err := db.Register(p); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := db.Execute(ctx, "bank.chain", 50, 150)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v; want context.DeadlineExceeded", err)
	}

	// Every lock the cancelled transaction acquired must be back: a
	// conflicting transfer over the same records commits with a live
	// context.
	if _, err := db.Execute(context.Background(), "bank.transfer", 50, 150, 1); err != nil {
		t.Fatalf("post-cancel conflicting transfer: %v", err)
	}
	db.drain() // join async commit tails before inspecting lock state
	for i, n := range db.nodeList() {
		if got := n.ActiveTxns(); got != 0 {
			t.Errorf("node %d still holds %d transactions' participant state", i, got)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	for i, n := range db.nodeList() {
		if got := n.ActiveTxns(); got != 0 {
			t.Errorf("node %d lock table not empty after Close: %d txns", i, got)
		}
	}
}

// TestCancelTwoRegionMidOuterWave drives the cancellation path of the
// Chiller engine proper: a two-region transaction whose outer region
// spans two waves is cancelled between them, and the outer locks of
// wave 1 are released.
func TestCancelTwoRegionMidOuterWave(t *testing.T) {
	db := openBank(t, 2, WithLatency(5*time.Millisecond))

	// Celebrity record: makes transactions touching it two-region.
	if err := db.MarkHot(tAccounts, 0); err != nil {
		t.Fatal(err)
	}

	// op 0: update the hot record (inner region); op 1: read a cold
	// remote record; op 2: update a cold record whose key depends on
	// op 1 — two outer waves.
	p := NewProc("bank.hotchain")
	p.Update(tAccounts, Arg(0), func(old []byte, _ Args, _ Reads) ([]byte, error) {
		return encBal(decBal(old) - 1), nil
	})
	cold := p.Read(tAccounts, Arg(1))
	p.Update(tAccounts, func(_ Args, reads Reads) (Key, bool) {
		v, ok := reads[1]
		if !ok {
			return 0, false
		}
		return Key(decBal(v)%100 + 100), true
	}, func(old []byte, _ Args, _ Reads) ([]byte, error) {
		return encBal(decBal(old) + 1), nil
	}).KeyFrom(cold)
	if err := db.Register(p); err != nil {
		t.Fatal(err)
	}

	// Pin the round-robin coordinator choice to node 0 — the hot
	// record's home — so the engine coordinates locally instead of
	// routing the whole transaction away (routed transactions execute
	// remotely and are not cancellable mid-flight).
	db.next.Store(uint64(len(db.engineList())) - 1)

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	_, err := db.Execute(ctx, "bank.hotchain", 0, 150)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v; want context.DeadlineExceeded", err)
	}

	// The cold read of wave 1 (key 150) and the hot record must both be
	// lockable again.
	if _, err := db.Execute(context.Background(), "bank.transfer", 150, 0, 1); err != nil {
		t.Fatalf("post-cancel transfer over same records: %v", err)
	}
	db.drain() // join async commit tails before inspecting lock state
	for i, n := range db.nodeList() {
		if got := n.ActiveTxns(); got != 0 {
			t.Errorf("node %d leaked %d transactions' locks", i, got)
		}
	}
}

func TestMarkHotTwoRegion(t *testing.T) {
	db := openBank(t, 2)
	if err := db.MarkHot(tAccounts, 0); err != nil {
		t.Fatal(err)
	}
	// Hot source, remote cold destination: still commits, marked
	// distributed, balances conserved.
	if _, err := db.Execute(context.Background(), "bank.transfer", 0, 150, 25); err != nil {
		t.Fatalf("hot transfer: %v", err)
	}
	src, _ := db.Get(tAccounts, 0)
	dst, _ := db.Get(tAccounts, 150)
	if decBal(src)+decBal(dst) != 2000 {
		t.Errorf("balance conservation violated: %d + %d", decBal(src), decBal(dst))
	}
}

func TestRepartition(t *testing.T) {
	db := openBank(t, 2, WithSampling(1))
	ctx := context.Background()

	// Skewed traffic: everyone debits account 0.
	for i := 0; i < 400; i++ {
		dst := int64(1 + i%150)
		if _, err := db.ExecuteWithRetry(ctx, Retry{}, "bank.transfer", 0, dst, 1); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	rep, err := db.Repartition(ctx)
	if err != nil {
		t.Fatalf("repartition: %v", err)
	}
	if rep.SampledTxns == 0 {
		t.Fatal("no samples consumed")
	}
	if rep.LookupTableSize != rep.HotRecords {
		t.Errorf("lookup table %d entries, hot %d", rep.LookupTableSize, rep.HotRecords)
	}

	// The layout change must not lose data: every account readable, and
	// traffic keeps committing.
	var total int64
	for k := Key(0); k < 200; k++ {
		v, err := db.Get(tAccounts, k)
		if err != nil {
			t.Fatalf("account %d unreadable after repartition: %v", k, err)
		}
		total += decBal(v)
	}
	if total != 200*1000 {
		t.Errorf("total balance after repartition = %d; want %d", total, 200*1000)
	}
	if _, err := db.ExecuteWithRetry(ctx, Retry{}, "bank.transfer", 0, 42, 1); err != nil {
		t.Fatalf("post-repartition transfer: %v", err)
	}
}

func TestRepartitionWithoutSampling(t *testing.T) {
	db := openBank(t, 1)
	if _, err := db.Repartition(context.Background()); err == nil {
		t.Fatal("repartition without sampling succeeded")
	}
}

func TestClosedDB(t *testing.T) {
	db := openBank(t, 1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := db.Execute(context.Background(), "bank.transfer", 0, 1, 1); !errors.Is(err, ErrClosed) {
		t.Errorf("Execute on closed DB = %v; want ErrClosed", err)
	}
	if err := db.Load(tAccounts, 0, encBal(1)); !errors.Is(err, ErrClosed) {
		t.Errorf("Load on closed DB = %v; want ErrClosed", err)
	}
	if err := db.MarkHot(tAccounts, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("MarkHot on closed DB = %v; want ErrClosed", err)
	}
}

func TestEngineKinds(t *testing.T) {
	for _, kind := range []EngineKind{Engine2PL, EngineOCC, EngineChiller} {
		t.Run(string(kind), func(t *testing.T) {
			db := openBank(t, 2, WithEngine(kind))
			if _, err := db.ExecuteWithRetry(context.Background(), Retry{},
				"bank.transfer", 10, 160, 5); err != nil {
				t.Fatalf("%s transfer: %v", kind, err)
			}
			src, _ := db.Get(tAccounts, 10)
			if decBal(src) != 995 {
				t.Errorf("%s source balance = %d; want 995", kind, decBal(src))
			}
		})
	}
}

func TestBuilderValidation(t *testing.T) {
	db := openBank(t, 1)

	// Update with no mutator must be rejected at Register.
	bad := NewProc("bad.update")
	bad.Update(tAccounts, Arg(0), nil)
	if err := db.Register(bad); err == nil {
		t.Error("update without mutator registered")
	}

	// Forward dependency must be rejected.
	fwd := NewProc("bad.forward")
	a := fwd.Read(tAccounts, Arg(0))
	later := fwd.Read(tAccounts, Arg(1))
	_ = a
	fwd.ops[0].KeyFrom(later)
	if err := db.Register(fwd); err == nil {
		t.Error("forward pk-dep registered")
	}

	// Duplicate name must be rejected.
	if err := db.Register(transferProc("bank.transfer")); err == nil {
		t.Error("duplicate procedure name registered")
	}
}

// WithVerbBatching routes the engine's fan-outs over the
// doorbell-batched one-sided transport; results must be identical to
// the scalar default, hot two-region transactions included.
func TestWithVerbBatching(t *testing.T) {
	db := openBank(t, 2, WithVerbBatching(true))
	ctx := context.Background()

	// Hot source account: transfers touching it run two-region, so the
	// batched outer wave, replica scatter, and commit tail all exercise
	// the doorbell path.
	if err := db.MarkHot(tAccounts, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		dst := Key(1 + (i*7)%199)
		if dst == 0 {
			dst = 1
		}
		if _, err := db.ExecuteWithRetry(ctx, Retry{}, "bank.transfer", 0, int64(dst), 5); err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
	}
	if v, err := db.Get(tAccounts, 0); err != nil || decBal(v) != 1000-40*5 {
		t.Fatalf("hot balance = %d, %v; want %d", decBal(v), err, 1000-40*5)
	}
	// Conservation across the whole bank.
	var total int64
	for k := Key(0); k < 200; k++ {
		v, err := db.Get(tAccounts, k)
		if err != nil {
			t.Fatal(err)
		}
		total += decBal(v)
	}
	if total != 200*1000 {
		t.Fatalf("total = %d, want %d", total, 200*1000)
	}
	// Constraint aborts still carry the typed taxonomy over doorbells.
	if _, err := db.Execute(ctx, "bank.transfer", 0, 1, 1_000_000); !errors.Is(err, ErrConstraint) {
		t.Fatalf("overdraft err = %v, want ErrConstraint", err)
	}
}
