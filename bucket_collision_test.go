package chiller

import (
	"context"
	"testing"

	"github.com/chillerdb/chiller/internal/storage"
)

// TestInnerOuterBucketCollision pins the self-conflict fix: a
// transaction whose hot (inner-region) record and cold (outer-region)
// record hash into the same storage bucket must still commit. Before the
// fix, the transaction's own outer lock NO_WAIT-aborted its inner region
// on every attempt, so the request could never commit and any
// retry-until-commit caller hung forever.
func TestInnerOuterBucketCollision(t *testing.T) {
	db, err := Open(
		WithPartitions(1),
		WithSeed(7),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })

	// A tiny bucket count guarantees colliding keys exist.
	if err := db.CreateTable(tAccounts, 4); err != nil {
		t.Fatal(err)
	}
	for k := Key(0); k < 100; k++ {
		if err := db.Load(tAccounts, k, encBal(1000)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Register(transferProc("bank.transfer")); err != nil {
		t.Fatal(err)
	}
	if err := db.MarkHot(tAccounts, 0); err != nil {
		t.Fatal(err)
	}

	// Find a cold destination sharing the hot source's bucket.
	tbl := db.nodeList()[0].Store().Table(storage.TableID(tAccounts))
	dst := int64(-1)
	for k := int64(1); k < 100; k++ {
		if tbl.BucketIndex(storage.Key(k)) == tbl.BucketIndex(0) {
			dst = k
			break
		}
	}
	if dst < 0 {
		t.Fatal("no colliding key found (bucket hash changed?)")
	}

	// One attempt must suffice: the transaction may not conflict with
	// itself.
	if _, err := db.Execute(context.Background(), "bank.transfer", 0, dst, 25); err != nil {
		t.Fatalf("colliding-bucket transfer: %v", err)
	}
	src, _ := db.Get(tAccounts, 0)
	got, _ := db.Get(tAccounts, Key(dst))
	if decBal(src) != 975 || decBal(got) != 1025 {
		t.Errorf("balances = %d, %d; want 975, 1025", decBal(src), decBal(got))
	}
	db.drain()
	for i, n := range db.nodeList() {
		if n.ActiveTxns() != 0 {
			t.Errorf("node %d leaked participant state", i)
		}
	}
}

// TestInnerOuterBucketCollisionSharedUpgrade exercises the borrowed-lock
// upgrade path: the outer region holds the shared bucket lock for a
// read, and the colliding inner record needs exclusive.
func TestInnerOuterBucketCollisionSharedUpgrade(t *testing.T) {
	db, err := Open(WithPartitions(1), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.CreateTable(tAccounts, 4); err != nil {
		t.Fatal(err)
	}
	for k := Key(0); k < 100; k++ {
		if err := db.Load(tAccounts, k, encBal(1000)); err != nil {
			t.Fatal(err)
		}
	}
	// audit-and-debit: read a cold account, then debit the hot one by
	// the cold account's balance modulo 100.
	p := NewProc("bank.auditdebit")
	cold := p.Read(tAccounts, Arg(1))
	p.Update(tAccounts, Arg(0), func(old []byte, _ Args, reads Reads) ([]byte, error) {
		return encBal(decBal(old) - decBal(reads[0])%100), nil
	}).ValueFrom(cold)
	if err := db.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := db.MarkHot(tAccounts, 0); err != nil {
		t.Fatal(err)
	}

	tbl := db.nodeList()[0].Store().Table(storage.TableID(tAccounts))
	coldKey := int64(-1)
	for k := int64(1); k < 100; k++ {
		if tbl.BucketIndex(storage.Key(k)) == tbl.BucketIndex(0) {
			coldKey = k
			break
		}
	}
	if coldKey < 0 {
		t.Fatal("no colliding key found")
	}

	if _, err := db.Execute(context.Background(), "bank.auditdebit", 0, coldKey); err != nil {
		t.Fatalf("shared-upgrade colliding transaction: %v", err)
	}
	src, _ := db.Get(tAccounts, 0)
	if decBal(src) != 1000-1000%100 {
		t.Errorf("hot balance = %d; want %d", decBal(src), 1000-1000%100)
	}
	db.drain()
	for i, n := range db.nodeList() {
		if n.ActiveTxns() != 0 {
			t.Errorf("node %d leaked participant state", i)
		}
	}
}
