package chiller_test

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"

	"github.com/chillerdb/chiller"
)

// Example embeds a two-partition cluster, registers a transfer
// procedure with the fluent builder, marks a celebrity account hot, and
// executes a distributed transaction whose contended record is locked
// only for its inner region's local execution time.
func Example() {
	const accounts chiller.Table = 1

	enc := func(v int64) []byte {
		b := make([]byte, 8)
		binary.LittleEndian.PutUint64(b, uint64(v))
		return b
	}
	dec := func(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

	db, err := chiller.Open(
		chiller.WithPartitions(2),
		chiller.WithReplication(2),
		chiller.WithRangePartitioner(map[chiller.Table]chiller.Key{accounts: 200}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.CreateTable(accounts, 1024); err != nil {
		log.Fatal(err)
	}
	for k := chiller.Key(0); k < 200; k++ {
		if err := db.Load(accounts, k, enc(1000)); err != nil {
			log.Fatal(err)
		}
	}

	// bank.transfer(src, dst, amount): debit aborts on overdraft.
	transfer := chiller.NewProc("bank.transfer")
	transfer.Update(accounts, chiller.Arg(0),
		func(old []byte, args chiller.Args, _ chiller.Reads) ([]byte, error) {
			if dec(old) < args[2] {
				return nil, fmt.Errorf("insufficient funds")
			}
			return enc(dec(old) - args[2]), nil
		})
	transfer.Update(accounts, chiller.Arg(1),
		func(old []byte, args chiller.Args, _ chiller.Reads) ([]byte, error) {
			return enc(dec(old) + args[2]), nil
		})
	if err := db.Register(transfer); err != nil {
		log.Fatal(err)
	}

	// Account 0 is partition 0's celebrity: transactions touching it
	// run two-region, committing the hot update in an inner region.
	if err := db.MarkHot(accounts, 0); err != nil {
		log.Fatal(err)
	}

	res, err := db.ExecuteWithRetry(context.Background(), chiller.Retry{},
		"bank.transfer", 0, 150, 25)
	if err != nil {
		log.Fatal(err)
	}
	src, _ := db.Get(accounts, 0)
	dst, _ := db.Get(accounts, 150)
	fmt.Printf("distributed=%v src=%d dst=%d\n", res.Distributed, dec(src), dec(dst))
	// Output: distributed=true src=975 dst=1025
}
