package chiller

import (
	"context"
	"errors"
	"fmt"

	"github.com/chillerdb/chiller/internal/txn"
)

// Sentinel errors returned (wrapped) by DB methods. Match them with
// errors.Is; every abort matches ErrAborted in addition to its specific
// reason, so callers can handle "the transaction did not commit" without
// enumerating causes:
//
//	_, err := db.Execute(ctx, "bank.transfer", 1, 2, 25)
//	switch {
//	case errors.Is(err, chiller.ErrLockConflict):
//		// retryable: another transaction held a lock (NO_WAIT denial)
//	case errors.Is(err, chiller.ErrAborted):
//		// any other abort: constraint, missing record, ...
//	}
var (
	// ErrAborted matches every aborted transaction, whatever the reason.
	ErrAborted = errors.New("transaction aborted")
	// ErrLockConflict is a NO_WAIT lock denial (or an OCC validation
	// lock failure). Retryable: see Retry.
	ErrLockConflict = errors.New("lock conflict")
	// ErrValidation is an OCC read-set validation failure. Retryable.
	ErrValidation = errors.New("validation failed")
	// ErrConstraint is an application value-constraint violation: a
	// Check hook or a mutator returned an error. Not retryable — the
	// same inputs will fail again.
	ErrConstraint = errors.New("constraint violation")
	// ErrNotFound means an operation referenced a key that does not
	// exist.
	ErrNotFound = errors.New("record not found")
	// ErrInternal covers transport and engine faults. An error matching
	// ErrInternal may also match ErrUnreachable when the fault was a
	// transient network failure.
	ErrInternal = errors.New("internal error")
	// ErrUnreachable is a transient transport fault before the commit
	// point: a participant could not be reached (dropped message,
	// network partition), everything the transaction held was released,
	// and a retry may succeed once the network heals. Retryable (see
	// Retry); it also matches ErrInternal, so existing
	// "ErrInternal-family" handling keeps working.
	ErrUnreachable = errors.New("participant unreachable")
	// ErrStaleRead means a read-only snapshot transaction's timestamp
	// fell behind a node's version-retention watermark (a recovery
	// raised it mid-read) more times than the engine's internal
	// fresh-snapshot retry budget. Retryable: the next attempt takes a
	// newer snapshot. Only possible under WithMVCC.
	ErrStaleRead = errors.New("stale snapshot read")
	// ErrMoved means the transaction addressed a node that no longer (or
	// not yet) owns one of its partitions: a live membership change or a
	// hot-record migration installed a new routing layout mid-flight.
	// Retryable — the retry consults the updated directory and routes to
	// the new owner. See docs/ELASTICITY.md.
	ErrMoved = errors.New("partition moved")
	// ErrUnknownProc means Execute named a procedure that was never
	// registered.
	ErrUnknownProc = errors.New("unknown procedure")
	// ErrClosed is returned by operations on a closed DB.
	ErrClosed = errors.New("database closed")
	// ErrBadConfig is returned by Open when options are invalid or
	// mutually exclusive — an out-of-range value, WithPeers without
	// WithTransport(TransportTCP), or a simulation-only option (latency,
	// jitter, sampling, partition count) combined with the TCP transport.
	ErrBadConfig = errors.New("invalid configuration")
	// ErrUnsupported is returned by DB methods that need direct access to
	// every node's store — CreateTable, Load, Get, MarkHot, Repartition —
	// when the DB joined a remote cluster over TCP: the data lives in
	// other processes, which size, load, and mark their stores at startup
	// (see cmd/chiller-node). Register, Execute, and Close are the TCP
	// client surface.
	ErrUnsupported = errors.New("operation not supported over this transport")
)

// AbortError is the concrete error type Execute returns for aborted
// transactions. It wraps the sentinel taxonomy above — errors.Is is the
// supported way to classify it; the type itself is exported for callers
// that want the reason string or procedure name in logs.
type AbortError struct {
	// Proc is the procedure that aborted.
	Proc string
	// Detail carries failure context for internal/unreachable aborts —
	// which verb failed and at which destination node (e.g. "commit at
	// node 2: ..."). Empty for application-level aborts.
	Detail string
	// Distributed reports whether the transaction had touched more than
	// one partition when it aborted.
	Distributed bool

	reason txn.AbortReason
}

// Error implements error.
func (e *AbortError) Error() string {
	if e.Detail != "" {
		return fmt.Sprintf("chiller: %s aborted: %s: %s", e.Proc, e.reason, e.Detail)
	}
	return fmt.Sprintf("chiller: %s aborted: %s", e.Proc, e.reason)
}

// Reason returns the abort classification as a stable string
// ("lock-conflict", "validation", "constraint", "not-found",
// "internal") — the same labels the benchmark JSON uses.
func (e *AbortError) Reason() string { return e.reason.String() }

// Is makes the sentinel taxonomy errors.Is-able.
func (e *AbortError) Is(target error) bool {
	switch target {
	case ErrAborted:
		return true
	case ErrLockConflict:
		return e.reason == txn.AbortLockConflict
	case ErrValidation:
		return e.reason == txn.AbortValidation
	case ErrConstraint:
		return e.reason == txn.AbortConstraint
	case ErrNotFound:
		return e.reason == txn.AbortNotFound
	case ErrInternal:
		return e.reason == txn.AbortInternal || e.reason == txn.AbortUnreachable
	case ErrUnreachable:
		return e.reason == txn.AbortUnreachable
	case ErrStaleRead:
		return e.reason == txn.AbortStaleRead
	case ErrMoved:
		return e.reason == txn.AbortMoved
	}
	return false
}

// abortError converts an engine abort reason into the public error. ctx
// supplies the cause for cancellation aborts, so errors.Is(err,
// context.Canceled / context.DeadlineExceeded) works as callers expect.
func abortError(ctx context.Context, proc string, res txn.Result) error {
	if res.Reason == txn.AbortCancelled {
		cause := ctx.Err()
		if cause == nil {
			cause = context.Canceled
		}
		return fmt.Errorf("chiller: %s cancelled: %w", proc, cause)
	}
	return &AbortError{Proc: proc, Detail: res.Detail, Distributed: res.Distributed, reason: res.Reason}
}

// Retryable reports whether the error is a transient condition that a
// retry with backoff may resolve: a NO_WAIT lock denial, an OCC
// validation failure, an unreachable participant (the transaction
// released everything before aborting; the network may heal), a stale
// snapshot read (the next attempt takes a fresher snapshot), or a
// stale-layout routing miss (the retry consults the new layout).
// Plain internal errors, constraint violations, missing records,
// unknown procedures, and cancellations are not retryable.
func Retryable(err error) bool {
	return errors.Is(err, ErrLockConflict) || errors.Is(err, ErrValidation) ||
		errors.Is(err, ErrUnreachable) || errors.Is(err, ErrStaleRead) ||
		errors.Is(err, ErrMoved)
}
