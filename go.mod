module github.com/chillerdb/chiller

go 1.24
