// Benchmark harness: one testing.B benchmark per table/figure in the
// paper's evaluation (§7), plus microbenchmarks for the substrates.
//
// Regenerate everything with
//
//	go test -bench=. -benchmem
//
// Figure benches print the same rows/series the paper plots and report
// the headline number via b.ReportMetric. Absolute values depend on the
// simulated network (see README.md); the shapes are what reproduce.
package chiller_test

import (
	"context"
	"os"
	"testing"
	"time"

	"github.com/chillerdb/chiller/internal/bench"
	"github.com/chillerdb/chiller/internal/cluster"
	"github.com/chillerdb/chiller/internal/metis"
	"github.com/chillerdb/chiller/internal/stats"
	"github.com/chillerdb/chiller/internal/storage"
	"github.com/chillerdb/chiller/internal/testutil"
	"github.com/chillerdb/chiller/internal/transport/simfab"
	"github.com/chillerdb/chiller/internal/txn"
	"github.com/chillerdb/chiller/internal/workload/instacart"
)

// benchOptions sizes the figure sweeps for the bench harness: larger than
// the unit-test options, still minutes-not-hours.
func benchOptions() bench.Options {
	opt := bench.DefaultOptions()
	opt.Duration = 400 * time.Millisecond
	return opt
}

// --- E1: Figure 7 ---

func BenchmarkFigure7(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Figure7(opt)
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(os.Stdout)
		if y, ok := fig.Get(bench.SchemeChiller, float64(opt.MaxPartitions)); ok {
			b.ReportMetric(y, "chiller-txns/sec")
		}
	}
}

// --- E2: Figure 8 ---

func BenchmarkFigure8(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Figure8(opt)
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(os.Stdout)
		if y, ok := fig.Get(bench.SchemeSchism, 2); ok {
			b.ReportMetric(y, "schism-ratio@2")
		}
	}
}

// --- E3: §7.2.2 lookup table sizes ---

func BenchmarkLookupTableSize(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.LookupTableSizes(opt)
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(os.Stdout)
		s, _ := fig.Get(bench.SchemeSchism, 4)
		c, _ := fig.Get(bench.SchemeChiller, 4)
		if c > 0 {
			b.ReportMetric(s/c, "schism/chiller-entries")
		}
	}
}

// --- E4/E5/E6: Figure 9a-c ---

func BenchmarkFigure9a(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		thr, _, _, err := bench.Figure9(opt)
		if err != nil {
			b.Fatal(err)
		}
		thr.Fprint(os.Stdout)
		if y, ok := thr.Get("Chiller", float64(opt.MaxConcurrency)); ok {
			b.ReportMetric(y, "chiller-txns/sec")
		}
	}
}

func BenchmarkFigure9b(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		_, abr, _, err := bench.Figure9(opt)
		if err != nil {
			b.Fatal(err)
		}
		abr.Fprint(os.Stdout)
		if y, ok := abr.Get("Chiller", float64(opt.MaxConcurrency)); ok {
			b.ReportMetric(y, "chiller-abort-rate")
		}
	}
}

func BenchmarkFigure9c(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		_, _, brk, err := bench.Figure9(opt)
		if err != nil {
			b.Fatal(err)
		}
		brk.Fprint(os.Stdout)
		if y, ok := brk.Get("Payment", float64(opt.MaxConcurrency)); ok {
			b.ReportMetric(y, "2pl-payment-abort-rate")
		}
	}
}

// --- E7: Figure 10 ---

func BenchmarkFigure10(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Figure10(opt)
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(os.Stdout)
		c0, _ := fig.Get("Chiller (5 txn)", 0)
		c100, _ := fig.Get("Chiller (5 txn)", 100)
		if c0 > 0 {
			b.ReportMetric(c100/c0, "chiller-retention@100%")
		}
	}
}

// --- Ablations ---

func BenchmarkAblationReorderOnly(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationReorderOnly(4, opt)
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(os.Stdout)
	}
}

func BenchmarkAblationMinWeight(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationMinEdgeWeight(4, opt)
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(os.Stdout)
	}
}

func BenchmarkAblationSampling(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationSamplingRate(opt)
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(os.Stdout)
	}
}

// --- substrate microbenchmarks ---

func BenchmarkLockWordUncontended(b *testing.B) {
	var l storage.LockWord
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.TryLock(storage.LockExclusive)
		l.Unlock(storage.LockExclusive)
	}
}

func BenchmarkBucketGet(b *testing.B) {
	s := storage.NewStore()
	tbl := s.CreateTable(1, 1024)
	for k := storage.Key(0); k < 1000; k++ {
		_ = tbl.Bucket(k).Insert(k, make([]byte, 64))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := storage.Key(i % 1000)
		_, _, _ = tbl.Bucket(k).Get(k)
	}
}

func BenchmarkSimnetRPC(b *testing.B) {
	n := simfab.New(simfab.Config{Latency: 0})
	defer n.Close()
	a := n.Endpoint(1)
	c := n.Endpoint(2)
	c.Handle("echo", func(_ simfab.NodeID, req []byte) ([]byte, error) { return req, nil })
	payload := make([]byte, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Call(2, "echo", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMetisPartition(b *testing.B) {
	rng := testutil.Rand(b, 1)
	builder := metis.NewBuilder(5000)
	for i := 0; i < 20000; i++ {
		builder.AddEdge(rng.Intn(5000), rng.Intn(5000), int64(1+rng.Intn(10)))
	}
	g := builder.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := metis.Partition(g, 8, 0.1, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkContentionLikelihood(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = stats.ContentionLikelihood(float64(i%10)/3, float64(i%7)/2)
	}
}

// Engine per-transaction cost on a small cluster, one benchmark per
// engine, using the bank transfer workload.
func benchmarkEngineTxn(b *testing.B, kind bench.EngineKind) {
	bank := &bench.Bank{AccountsPerPartition: 1000, RemoteProb: 0.2}
	c := bench.NewCluster(bench.ClusterConfig{
		Partitions: 4,
		Latency:    time.Microsecond,
		Seed:       1,
	}, cluster.RangePartitioner{
		N:      4,
		MaxKey: map[storage.TableID]storage.Key{bench.BankTable: 4000},
	})
	defer c.Close()
	if err := bench.SetupBank(c, bank, true); err != nil {
		b.Fatal(err)
	}
	bank.MarkCelebritiesHot(c)
	eng := c.Engine(kind, 0)
	rng := testutil.Rand(b, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := bank.Next(0, rng)
		res := eng.Run(context.Background(), req)
		if !res.Committed && res.Reason != txn.AbortLockConflict {
			b.Fatalf("unexpected abort: %v", res.Reason)
		}
	}
}

func BenchmarkTxn2PL(b *testing.B)     { benchmarkEngineTxn(b, bench.Engine2PL) }
func BenchmarkTxnOCC(b *testing.B)     { benchmarkEngineTxn(b, bench.EngineOCC) }
func BenchmarkTxnChiller(b *testing.B) { benchmarkEngineTxn(b, bench.EngineChiller) }

func BenchmarkInstacartBasketGen(b *testing.B) {
	w := instacart.NewWorkload(instacart.Config{Products: 50000, Partitions: 8})
	rng := testutil.Rand(b, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = w.Basket(rng)
	}
}

func BenchmarkAblationLatency(b *testing.B) {
	opt := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationLatency(4, opt)
		if err != nil {
			b.Fatal(err)
		}
		fig.Fprint(os.Stdout)
	}
}
