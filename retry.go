package chiller

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Retry is a jittered-exponential-backoff retry policy for transient
// aborts (NO_WAIT lock conflicts, OCC validation failures). The zero
// value is a sensible default: retry until the context is done, backing
// off from 2µs doubling to 1ms, the same policy the benchmark harness's
// closed-loop clients use. Identical requests replayed at spin speed
// livelock against each other under NO_WAIT; the randomized backoff is
// what desynchronizes them.
type Retry struct {
	// MaxAttempts bounds the total number of attempts (first try
	// included). 0 means unbounded: retry until commit, a non-retryable
	// abort, or ctx done.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling (default 2µs).
	// Each retry sleeps a uniformly random duration in (0, backoff],
	// and backoff doubles per attempt.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (default 1ms).
	MaxBackoff time.Duration
}

// Do runs fn until it commits, fails a non-retryable way, exhausts
// MaxAttempts, or ctx is done — whichever comes first. The returned
// Result and error are the last attempt's.
func (r Retry) Do(ctx context.Context, fn func(context.Context) (Result, error)) (Result, error) {
	base := r.BaseBackoff
	if base <= 0 {
		base = 2 * time.Microsecond
	}
	max := r.MaxBackoff
	if max <= 0 {
		max = time.Millisecond
	}
	backoff := base
	for attempt := 1; ; attempt++ {
		res, err := fn(ctx)
		if err == nil || !Retryable(err) {
			return res, err
		}
		if r.MaxAttempts > 0 && attempt >= r.MaxAttempts {
			return res, err
		}
		t := time.NewTimer(time.Duration(rand.Int63n(int64(backoff)) + 1))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return res, fmt.Errorf("chiller: retry abandoned after %d attempts: %w", attempt, ctx.Err())
		}
		if backoff < max {
			backoff *= 2
		}
	}
}

// ExecuteWithRetry is Execute wrapped in the retry policy: transient
// aborts are retried with jittered backoff, every other outcome is
// returned as-is.
func (db *DB) ExecuteWithRetry(ctx context.Context, policy Retry, proc string, args ...int64) (Result, error) {
	return policy.Do(ctx, func(ctx context.Context) (Result, error) {
		return db.Execute(ctx, proc, args...)
	})
}
