package chiller

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Retry is a jittered-exponential-backoff retry policy for transient
// aborts (NO_WAIT lock conflicts, OCC validation failures, unreachable
// participants). The zero value is a sensible default: retry until the
// context is done, backing off from 2µs doubling to 1ms, the same
// policy the benchmark harness's closed-loop clients use. Identical
// requests replayed at spin speed livelock against each other under
// NO_WAIT; the randomized backoff is what desynchronizes them.
type Retry struct {
	// MaxAttempts bounds the total number of attempts (first try
	// included). 0 means unbounded: retry until commit, a non-retryable
	// abort, or ctx done.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling (default 2µs).
	// Each retry sleeps a uniformly random duration in (0, ceiling],
	// and the ceiling doubles per attempt.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling (default 1ms).
	MaxBackoff time.Duration
	// Rand supplies the jitter randomness; nil draws from the global
	// math/rand source. Inject a seeded *rand.Rand to make a policy's
	// backoff sequence deterministic (tests, replayable harnesses).
	// A *rand.Rand is not safe for concurrent use: give each goroutine
	// its own policy value with its own Rand, or leave Rand nil.
	Rand *rand.Rand
}

// base and cap return the policy's effective bounds.
func (r Retry) base() time.Duration {
	if r.BaseBackoff > 0 {
		return r.BaseBackoff
	}
	return 2 * time.Microsecond
}

func (r Retry) cap() time.Duration {
	if r.MaxBackoff > 0 {
		return r.MaxBackoff
	}
	return time.Millisecond
}

// ceiling returns the backoff ceiling for the given retry (1-based: the
// sleep after the first failed attempt uses retry 1): base doubling per
// retry, capped at MaxBackoff.
func (r Retry) ceiling(retry int) time.Duration {
	c, max := r.base(), r.cap()
	for i := 1; i < retry; i++ {
		if c >= max {
			return max
		}
		c *= 2
	}
	if c > max {
		return max
	}
	return c
}

// jitter draws the sleep before the given retry: uniform in
// (0, ceiling(retry)].
func (r Retry) jitter(retry int) time.Duration {
	c := int64(r.ceiling(retry))
	if r.Rand != nil {
		return time.Duration(r.Rand.Int63n(c) + 1)
	}
	return time.Duration(rand.Int63n(c) + 1)
}

// Do runs fn until it commits, fails a non-retryable way, exhausts
// MaxAttempts, or ctx is done — whichever comes first. The returned
// Result and error are the last attempt's.
func (r Retry) Do(ctx context.Context, fn func(context.Context) (Result, error)) (Result, error) {
	for attempt := 1; ; attempt++ {
		res, err := fn(ctx)
		if err == nil || !Retryable(err) {
			return res, err
		}
		if r.MaxAttempts > 0 && attempt >= r.MaxAttempts {
			return res, err
		}
		t := time.NewTimer(r.jitter(attempt))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return res, fmt.Errorf("chiller: retry abandoned after %d attempts: %w", attempt, ctx.Err())
		}
	}
}

// ExecuteWithRetry is Execute wrapped in the retry policy: transient
// aborts are retried with jittered backoff, every other outcome is
// returned as-is.
func (db *DB) ExecuteWithRetry(ctx context.Context, policy Retry, proc string, args ...int64) (Result, error) {
	return policy.Do(ctx, func(ctx context.Context) (Result, error) {
		return db.Execute(ctx, proc, args...)
	})
}
