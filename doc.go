// Package chiller is a from-scratch reproduction of "Chiller:
// Contention-centric Transaction Execution and Data Partitioning for Fast
// Networks" (Zamanian, Shun, Binnig, Kraska — SIGMOD 2020).
//
// The library implements the paper's two contributions — the two-region
// transaction execution model (internal/core) and the contention-centric
// partitioner (internal/partition/chillerpart) — together with every
// substrate they need: a simulated RDMA fabric (internal/simnet), a
// NAM-DB-style bucket storage engine (internal/storage), 2PL/2PC and OCC
// baseline engines (internal/cc/...), primary-backup and inner-region
// replication plus per-core execution lanes (internal/server), the
// statistics service (internal/stats), a multilevel graph partitioner
// (internal/metis), and TPC-C, Instacart and YCSB workloads
// (internal/workload/...). Every node shards its execution engine into
// single-threaded lanes — the paper's one-engine-per-core deployment —
// so per-node throughput scales with cores while same-record work stays
// serialized.
//
// This package is also the public embedded-database API — the one
// supported way to use the system as a library (the internal packages
// carry no compatibility promise). Open assembles a simulated cluster
// with functional options; NewProc declaratively builds stored
// procedures (key dependencies, value dependencies, constraint checks,
// co-location hints — the declarations the §3 static analysis
// consumes); DB.Execute runs one transaction under a context.Context
// with a typed, errors.Is-able error taxonomy (ErrAborted,
// ErrLockConflict, ErrConstraint, ErrNotFound, ErrUnknownProc, ...);
// Retry supplies the standard jittered-backoff NO_WAIT retry policy;
// DB.MarkHot and DB.Repartition expose the §4.4 hot lookup table and
// the §4 contention-centric partitioner; DB.Close drains asynchronous
// commit work before teardown, so quiesce is automatic. See the
// package example and the README quickstart.
//
// docs/ARCHITECTURE.md walks a transaction through the whole stack and
// maps each package to its paper section (its "Public API" section maps
// every DB method to the internal layers it drives); docs/FIGURES.md
// indexes the reproduced evaluation (experiments, JSON schema, expected
// shapes). Start with the examples/ directory — all of which run on the
// public API alone — the chiller-bench command (-exp list prints the
// experiment index), or the benchmark harness in bench_test.go, which
// regenerates every table and figure of the paper's evaluation;
// internal/bench/experiments.go defines the experiments themselves.
package chiller

// Version identifies the reproduction release.
const Version = "1.2.0"
