// Package chiller is a from-scratch reproduction of "Chiller:
// Contention-centric Transaction Execution and Data Partitioning for Fast
// Networks" (Zamanian, Shun, Binnig, Kraska — SIGMOD 2020).
//
// The library implements the paper's two contributions — the two-region
// transaction execution model (internal/core) and the contention-centric
// partitioner (internal/partition/chillerpart) — together with every
// substrate they need: a simulated RDMA fabric (internal/simnet), a
// NAM-DB-style bucket storage engine (internal/storage), 2PL/2PC and OCC
// baseline engines (internal/cc/...), primary-backup and inner-region
// replication plus per-core execution lanes (internal/server), the
// statistics service (internal/stats), a multilevel graph partitioner
// (internal/metis), and TPC-C, Instacart and YCSB workloads
// (internal/workload/...). Every node shards its execution engine into
// single-threaded lanes — the paper's one-engine-per-core deployment —
// so per-node throughput scales with cores while same-record work stays
// serialized.
//
// docs/ARCHITECTURE.md walks a transaction through the whole stack and
// maps each package to its paper section; docs/FIGURES.md indexes the
// reproduced evaluation (experiments, JSON schema, expected shapes).
// Start with the examples/ directory, the chiller-bench command
// (-exp list prints the experiment index), or the benchmark harness in
// bench_test.go, which regenerates every table and figure of the
// paper's evaluation; internal/bench/experiments.go defines the
// experiments themselves.
package chiller

// Version identifies the reproduction release.
const Version = "1.1.0"
